// Unit and property tests for the flow-level network model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/flow.h"
#include "net/provider.h"
#include "net/topology.h"
#include "sim/scheduler.h"

namespace nws::net {
namespace {

using nws::operator""_MiB;
using nws::operator""_KiB;

struct Fixture {
  sim::Scheduler sched;
  FlowScheduler flows{sched};
};

Link plain_link(const std::string& name, double capacity) {
  Link l;
  l.name = name;
  l.raw_capacity = capacity;
  return l;
}

sim::Task<void> run_transfer(FlowScheduler& fs, std::vector<LinkId> path, nws::Bytes bytes, double cap,
                             sim::TimePoint* done_at, sim::Scheduler* sched) {
  co_await fs.transfer(std::move(path), bytes, cap);
  *done_at = sched->now();
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EfficiencyCurveTest, InterpolatesAndClamps) {
  const EfficiencyCurve c({{1, 10.0}, {3, 20.0}, {5, 30.0}});
  EXPECT_DOUBLE_EQ(c.evaluate(0.5), 10.0);
  EXPECT_DOUBLE_EQ(c.evaluate(1), 10.0);
  EXPECT_DOUBLE_EQ(c.evaluate(2), 15.0);
  EXPECT_DOUBLE_EQ(c.evaluate(4), 25.0);
  EXPECT_DOUBLE_EQ(c.evaluate(9), 30.0);
}

TEST(EfficiencyCurveTest, RejectsUnsortedPoints) {
  EXPECT_THROW(EfficiencyCurve({{2, 1.0}, {1, 2.0}}), std::invalid_argument);
}

TEST(EfficiencyCurveTest, EmptyEvaluateThrows) {
  const EfficiencyCurve c;
  EXPECT_THROW((void)c.evaluate(1), std::logic_error);
}

TEST(FlowSchedulerTest, SingleFlowUsesFullLink) {
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));  // 100 B/s
  sim::TimePoint done = -1;
  fx.sched.spawn(run_transfer(fx.flows, {link}, 1000, kInf, &done, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(done, sim::seconds(10.0));
  EXPECT_EQ(fx.flows.stats().flows_completed, 1u);
  EXPECT_DOUBLE_EQ(fx.flows.stats().bytes_delivered, 1000.0);
}

TEST(FlowSchedulerTest, TwoFlowsShareFairly) {
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint a = -1;
  sim::TimePoint b = -1;
  fx.sched.spawn(run_transfer(fx.flows, {link}, 1000, kInf, &a, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {link}, 1000, kInf, &b, &fx.sched));
  fx.sched.run();
  // Both at 50 B/s -> 20 s.
  EXPECT_EQ(a, sim::seconds(20.0));
  EXPECT_EQ(b, sim::seconds(20.0));
}

TEST(FlowSchedulerTest, ShortFlowReleasesBandwidthToLongFlow) {
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint small = -1;
  sim::TimePoint large = -1;
  fx.sched.spawn(run_transfer(fx.flows, {link}, 500, kInf, &small, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {link}, 1500, kInf, &large, &fx.sched));
  fx.sched.run();
  // Phase 1: both at 50 B/s for 10 s (small done, large has 1000 left).
  // Phase 2: large at 100 B/s for 10 s.
  EXPECT_EQ(small, sim::seconds(10.0));
  EXPECT_EQ(large, sim::seconds(20.0));
}

TEST(FlowSchedulerTest, PerFlowCapHonoured) {
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint done = -1;
  fx.sched.spawn(run_transfer(fx.flows, {link}, 1000, 10.0, &done, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(done, sim::seconds(100.0));
}

TEST(FlowSchedulerTest, MaxMinRedistributesCappedHeadroom) {
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint capped = -1;
  sim::TimePoint open1 = -1;
  sim::TimePoint open2 = -1;
  // Capped flow takes 10 B/s; the two open flows split the remaining 90.
  fx.sched.spawn(run_transfer(fx.flows, {link}, 100, 10.0, &capped, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {link}, 450, kInf, &open1, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {link}, 450, kInf, &open2, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(capped, sim::seconds(10.0));
  EXPECT_EQ(open1, sim::seconds(10.0));
  EXPECT_EQ(open2, sim::seconds(10.0));
}

TEST(FlowSchedulerTest, MultiLinkBottleneck) {
  Fixture fx;
  const LinkId fat = fx.flows.add_link(plain_link("fat", 1000.0));
  const LinkId thin = fx.flows.add_link(plain_link("thin", 10.0));
  sim::TimePoint done = -1;
  fx.sched.spawn(run_transfer(fx.flows, {fat, thin}, 100, kInf, &done, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(done, sim::seconds(10.0));
}

TEST(FlowSchedulerTest, DisjointFlowsDoNotInterfere) {
  Fixture fx;
  const LinkId l1 = fx.flows.add_link(plain_link("l1", 100.0));
  const LinkId l2 = fx.flows.add_link(plain_link("l2", 100.0));
  sim::TimePoint a = -1;
  sim::TimePoint b = -1;
  fx.sched.spawn(run_transfer(fx.flows, {l1}, 1000, kInf, &a, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {l2}, 1000, kInf, &b, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(a, sim::seconds(10.0));
  EXPECT_EQ(b, sim::seconds(10.0));
}

TEST(FlowSchedulerTest, DisjointArrivalsSkipFullSolve) {
  // Exact-regime fast path: an arrival whose links carry no other flow takes
  // its solo bottleneck rate without running the max-min solver, and a
  // departure that leaves its links empty needs no solve either.
  Fixture fx;
  const LinkId l1 = fx.flows.add_link(plain_link("l1", 100.0));
  const LinkId l2 = fx.flows.add_link(plain_link("l2", 100.0));
  sim::TimePoint a = -1;
  sim::TimePoint b = -1;
  fx.sched.spawn(run_transfer(fx.flows, {l1}, 1000, kInf, &a, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {l2}, 1000, 40.0, &b, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(a, sim::seconds(10.0));
  EXPECT_EQ(b, sim::seconds(25.0));  // solo rate still honours the flow cap
  EXPECT_EQ(fx.flows.stats().rate_recomputations, 0u);
}

sim::Task<void> transfer_at(Fixture& fx, sim::TimePoint when, std::vector<LinkId> path,
                            nws::Bytes bytes, sim::TimePoint* done_at) {
  co_await fx.sched.delay(when - fx.sched.now());
  co_await fx.flows.transfer(std::move(path), bytes, kInf);
  *done_at = fx.sched.now();
}

TEST(FlowSchedulerTest, CoincidentArrivalAndCompletionSolveOnce) {
  // Regression: when start_flow's settle() also completes a flow at the same
  // instant, the combined change must be charged exactly ONE rate update, not
  // one for the completions plus one for the arrival.
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint a = -1;
  sim::TimePoint b = -1;
  // B's wake-up timer is scheduled before A's completion timer, so at t=10s
  // B's start_flow runs first and its settle() sweeps up the just-finished A
  // (a shared departure: B is now on A's link).
  fx.sched.spawn(transfer_at(fx, sim::seconds(10.0), {link}, 500, &b));
  fx.sched.spawn(run_transfer(fx.flows, {link}, 1000, kInf, &a, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(a, sim::seconds(10.0));
  EXPECT_EQ(b, sim::seconds(15.0));
  EXPECT_EQ(fx.flows.stats().flows_completed, 2u);
  // A's arrival and B's departure both hit fast paths; the only solve is the
  // coincident arrival+completion at t=10s.
  EXPECT_EQ(fx.flows.stats().rate_recomputations, 1u);
}

TEST(FlowSchedulerTest, EmptyPathCompletesImmediately) {
  Fixture fx;
  sim::TimePoint done = -1;
  fx.sched.spawn(run_transfer(fx.flows, {}, 1000, kInf, &done, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(done, 0);
}

TEST(FlowSchedulerTest, ZeroByteTransferCompletesImmediately) {
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint done = -1;
  fx.sched.spawn(run_transfer(fx.flows, {link}, 0, kInf, &done, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(done, 0);
}

TEST(FlowSchedulerTest, InstantTransfersAreAccounted) {
  // Regression: the empty-path and zero-byte fast paths used to return
  // without touching FlowStats, so conservation checks (bytes requested ==
  // bytes delivered) failed whenever a model legitimately moved zero-cost
  // payloads.
  Fixture fx;
  const LinkId link = fx.flows.add_link(plain_link("l", 100.0));
  sim::TimePoint a = -1;
  sim::TimePoint b = -1;
  fx.sched.spawn(run_transfer(fx.flows, {}, 1000, kInf, &a, &fx.sched));
  fx.sched.spawn(run_transfer(fx.flows, {link}, 0, kInf, &b, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(fx.flows.stats().flows_started, 2u);
  EXPECT_EQ(fx.flows.stats().flows_completed, 2u);
  EXPECT_DOUBLE_EQ(fx.flows.stats().bytes_delivered, 1000.0);
}

TEST(FlowSchedulerTest, UnknownLinkRejected) {
  Fixture fx;
  sim::TimePoint done = -1;
  fx.sched.spawn(run_transfer(fx.flows, {42}, 10, kInf, &done, &fx.sched));
  EXPECT_THROW(fx.sched.run(), std::out_of_range);
}

TEST(FlowSchedulerTest, NonPositiveCapacityRejected) {
  Fixture fx;
  EXPECT_THROW(fx.flows.add_link(plain_link("bad", 0.0)), std::invalid_argument);
}

TEST(FlowSchedulerTest, EfficiencyCurveReducesAggregate) {
  Fixture fx;
  Link l = plain_link("nic", 125.0);
  // 1 stream: 31; 2 streams: 41 aggregate (mini Table 2 shape).
  l.efficiency = EfficiencyCurve({{1, 31.0}, {2, 41.0}});
  const LinkId link = fx.flows.add_link(std::move(l));
  sim::TimePoint a = -1;
  sim::TimePoint b = -1;
  fx.sched.spawn(run_transfer(fx.flows, {link}, 310, kInf, &a, &fx.sched));
  fx.sched.run();
  EXPECT_EQ(a, sim::seconds(10.0));  // single stream at 31 B/s

  sim::Scheduler sched2;
  FlowScheduler flows2(sched2);
  Link l2 = plain_link("nic", 125.0);
  l2.efficiency = EfficiencyCurve({{1, 31.0}, {2, 41.0}});
  const LinkId link2 = flows2.add_link(std::move(l2));
  sched2.spawn(run_transfer(flows2, {link2}, 205, kInf, &a, &sched2));
  sched2.spawn(run_transfer(flows2, {link2}, 205, kInf, &b, &sched2));
  sched2.run();
  EXPECT_EQ(a, sim::seconds(10.0));  // two streams at 20.5 B/s each
  EXPECT_EQ(b, sim::seconds(10.0));
}

// Property sweep: N equal flows through one link must each get capacity/N
// (conservation + fairness), regardless of N.
class FlowFairness : public ::testing::TestWithParam<int> {};

TEST_P(FlowFairness, EqualFlowsSplitEqually) {
  const int n = GetParam();
  Fixture fx;
  fx.flows.set_lazy_recompute(std::numeric_limits<std::size_t>::max(), 1);  // exact solver
  const LinkId link = fx.flows.add_link(plain_link("l", 1000.0));
  std::vector<sim::TimePoint> done(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    fx.sched.spawn(run_transfer(fx.flows, {link}, 1000, kInf, &done[static_cast<std::size_t>(i)], &fx.sched));
  }
  fx.sched.run();
  for (const auto t : done) EXPECT_EQ(t, sim::seconds(static_cast<double>(n)));
  EXPECT_DOUBLE_EQ(fx.flows.stats().bytes_delivered, 1000.0 * n);
  EXPECT_EQ(fx.flows.stats().peak_concurrent, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Widths, FlowFairness, ::testing::Values(1, 2, 3, 7, 16, 64, 256));

// The bounded-staleness mode must conserve bytes exactly and approximate
// the exact completion time closely.
TEST(FlowSchedulerTest, LazyRecomputeStaysCloseToExact) {
  auto run_with = [](std::size_t threshold) {
    sim::Scheduler sched;
    FlowScheduler flows(sched);
    flows.set_lazy_recompute(threshold, 12);
    const LinkId link = flows.add_link(plain_link("l", 1000.0));
    const int n = 400;
    auto done = std::make_shared<std::vector<sim::TimePoint>>(n, -1);
    for (int i = 0; i < n; ++i) {
      // Staggered arrivals so the flow set keeps churning.
      auto proc = [](sim::Scheduler& s, FlowScheduler& fs, LinkId l, sim::TimePoint* out,
                     int idx) -> sim::Task<void> {
        co_await s.delay(sim::milliseconds(static_cast<double>(idx)));
        std::vector<LinkId> path{l};
        co_await fs.transfer(std::move(path), 500, kInf);
        *out = s.now();
      };
      sched.spawn(proc(sched, flows, link, &(*done)[static_cast<std::size_t>(i)], i));
    }
    sched.run();
    double total = flows.stats().bytes_delivered;
    return std::pair<double, sim::TimePoint>(total, sched.now());
  };
  const auto exact = run_with(std::numeric_limits<std::size_t>::max());
  const auto lazy = run_with(64);
  EXPECT_DOUBLE_EQ(exact.first, lazy.first);  // bytes conserved exactly
  const double exact_t = static_cast<double>(exact.second);
  const double lazy_t = static_cast<double>(lazy.second);
  EXPECT_NEAR(lazy_t / exact_t, 1.0, 0.05);  // completion time within 5%
}

TEST(ProviderTest, TcpStreamCurveMatchesTable2Row) {
  const ProviderProfile tcp = tcp_provider();
  // Single-stream optimum ~3.1 GiB/s in the low-MiB range (Table 2 row 2).
  double best = 0.0;
  for (const nws::Bytes s : {256_KiB, 512_KiB, 1_MiB, 2_MiB, 4_MiB, 8_MiB, 16_MiB, 32_MiB}) {
    best = std::max(best, tcp.stream_rate_cap(s));
  }
  EXPECT_NEAR(to_gib_per_sec(best), 3.1, 0.15);
  // Large transfers are slower than the optimum.
  EXPECT_LT(tcp.stream_rate_cap(32_MiB), best);
  // Tiny transfers are latency-bound.
  EXPECT_LT(tcp.stream_rate_cap(64_KiB), 0.8 * best);
}

TEST(ProviderTest, Psm2StreamNearsAdapterLimit) {
  const ProviderProfile psm2 = psm2_provider();
  EXPECT_NEAR(to_gib_per_sec(psm2.stream_rate_cap(8_MiB)), 12.1, 0.2);
  EXPECT_LT(psm2.stream_rate_cap(8_MiB), gib_per_sec(12.5));
}

TEST(ProviderTest, TcpAggregateCurveMatchesTable2) {
  const ProviderProfile tcp = tcp_provider();
  EXPECT_NEAR(to_gib_per_sec(tcp.nic_curve.evaluate(1)), 3.1, 0.01);
  EXPECT_NEAR(to_gib_per_sec(tcp.nic_curve.evaluate(8)), 9.5, 0.01);
  EXPECT_NEAR(to_gib_per_sec(tcp.nic_curve.evaluate(16)), 9.0, 0.01);
  // Degradation past 8 streams (Table 2: 16 pairs slower than 8).
  EXPECT_GT(to_gib_per_sec(tcp.nic_curve.evaluate(8)), to_gib_per_sec(tcp.nic_curve.evaluate(16)));
}

TEST(ProviderTest, LookupByName) {
  EXPECT_EQ(provider_by_name("tcp").name, "tcp");
  EXPECT_EQ(provider_by_name("psm2").name, "psm2");
  EXPECT_THROW(provider_by_name("verbs"), std::invalid_argument);
  EXPECT_FALSE(provider_by_name("psm2").supports_dual_rail);
  EXPECT_TRUE(provider_by_name("tcp").supports_dual_rail);
}

TEST(TopologyTest, PathsFollowRails) {
  sim::Scheduler sched;
  FlowScheduler flows(sched);
  TopologyConfig cfg;
  cfg.nodes = 2;
  cfg.provider = tcp_provider();
  const Topology topo(flows, cfg);

  // Same rail: tx + rx only.
  const auto same_rail = topo.path({0, 0}, {1, 0});
  ASSERT_EQ(same_rail.size(), 2u);
  EXPECT_EQ(same_rail[0], topo.nic_tx({0, 0}));
  EXPECT_EQ(same_rail[1], topo.nic_rx({1, 0}));

  // Cross rail: enters on sender's rail, crosses destination UPI.
  const auto cross_rail = topo.path({0, 0}, {1, 1});
  ASSERT_EQ(cross_rail.size(), 3u);
  EXPECT_EQ(cross_rail[0], topo.nic_tx({0, 0}));
  EXPECT_EQ(cross_rail[1], topo.nic_rx({1, 0}));  // same-rail NIC on destination
  EXPECT_EQ(cross_rail[2], topo.upi(1));

  // Same node, different socket: UPI only, no fabric.
  const auto intra = topo.path({0, 0}, {0, 1});
  ASSERT_EQ(intra.size(), 1u);
  EXPECT_EQ(intra[0], topo.upi(0));

  // Same endpoint: no links.
  EXPECT_TRUE(topo.path({0, 1}, {0, 1}).empty());
}

TEST(TopologyTest, LatencyOrdering) {
  sim::Scheduler sched;
  FlowScheduler flows(sched);
  TopologyConfig cfg;
  cfg.nodes = 2;
  cfg.provider = tcp_provider();
  const Topology topo(flows, cfg);
  EXPECT_LT(topo.latency({0, 0}, {0, 0}), topo.latency({0, 0}, {0, 1}));
  EXPECT_LT(topo.latency({0, 0}, {0, 1}), topo.latency({0, 0}, {1, 0}));
  EXPECT_LT(topo.latency({0, 0}, {1, 0}), topo.latency({0, 0}, {1, 1}));
}

TEST(TopologyTest, RejectsBadEndpoints) {
  sim::Scheduler sched;
  FlowScheduler flows(sched);
  TopologyConfig cfg;
  cfg.nodes = 1;
  cfg.provider = tcp_provider();
  const Topology topo(flows, cfg);
  EXPECT_THROW((void)topo.nic_tx({1, 0}), std::out_of_range);
  EXPECT_THROW((void)topo.nic_tx({0, 2}), std::out_of_range);
}

TEST(TopologyTest, PsmLatencyBelowTcp) {
  sim::Scheduler s1;
  FlowScheduler f1(s1);
  TopologyConfig c1;
  c1.nodes = 2;
  c1.provider = tcp_provider();
  const Topology t1(f1, c1);

  sim::Scheduler s2;
  FlowScheduler f2(s2);
  TopologyConfig c2;
  c2.nodes = 2;
  c2.provider = psm2_provider();
  const Topology t2(f2, c2);

  EXPECT_LT(t2.latency({0, 0}, {1, 0}), t1.latency({0, 0}, {1, 0}));
}

// End-to-end sanity: a TCP transfer between two nodes should deliver about
// 3.1 GiB/s for one stream and ~9.5 GiB/s aggregate for 8 streams.
class TcpStreamScaling : public ::testing::TestWithParam<int> {};

TEST_P(TcpStreamScaling, AggregateTracksTable2) {
  const int streams = GetParam();
  sim::Scheduler sched;
  FlowScheduler flows(sched);
  TopologyConfig cfg;
  cfg.nodes = 2;
  cfg.provider = tcp_provider();
  const Topology topo(flows, cfg);

  const nws::Bytes per_stream = 64_MiB;
  std::vector<sim::TimePoint> done(static_cast<std::size_t>(streams), -1);
  for (int i = 0; i < streams; ++i) {
    auto path = topo.path({0, 0}, {1, 0});
    const double cap = cfg.provider.stream_rate_cap(2_MiB);  // chunked at optimum
    sched.spawn(run_transfer(flows, std::move(path), per_stream, cap, &done[static_cast<std::size_t>(i)],
                             &sched));
  }
  sched.run();
  sim::TimePoint last = 0;
  for (const auto t : done) last = std::max(last, t);
  const double aggregate =
      static_cast<double>(per_stream) * streams / sim::to_seconds(last);
  const double expected = std::min(static_cast<double>(streams) * cfg.provider.stream_rate_cap(2_MiB),
                                   cfg.provider.nic_curve.evaluate(streams));
  EXPECT_NEAR(to_gib_per_sec(aggregate), to_gib_per_sec(expected), 0.1);
}

INSTANTIATE_TEST_SUITE_P(StreamCounts, TcpStreamScaling, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace nws::net
