// Determinism contracts for nws::Rng (src/common/rng.h).  The whole
// simulation's bit-reproducibility rests on these properties, and nwslint's
// determinism rule exists to funnel all randomness through this class — so
// the class itself gets its contracts pinned here: same seed → identical
// stream, different seeds → uncorrelated streams, fork() → independent
// per-actor streams, and exact known values so a platform or refactor
// change that silently alters the stream fails loudly.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace {

TEST(Rng, SameSeedSameStream) {
  nws::Rng a(12345);
  nws::Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "streams diverged at draw " << i;
  }
}

TEST(Rng, AdjacentSeedsGiveUncorrelatedStreams) {
  // SplitMix64's seed scrambling is the reason benchmarks may derive
  // per-repetition seeds as base, base+1, base+2, ...
  nws::Rng a(7);
  nws::Rng b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, KnownValuesPinTheStream) {
  // Golden values: SplitMix64 with seed 0 (state pre-incremented by the
  // golden gamma before each output).  Any change to the algorithm, the
  // constants, or integer-width behaviour on a new platform trips this.
  nws::Rng rng(0);
  EXPECT_EQ(rng.next_u64(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(rng.next_u64(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(rng.next_u64(), 0x06c45d188009454full);
  EXPECT_EQ(rng.next_u64(), 0xf88bb8a8724c81ecull);
}

TEST(Rng, DefaultSeedIsStableAcrossRuns) {
  nws::Rng a;
  nws::Rng b;
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkYieldsIndependentChildStreams) {
  // One child per simulated actor: same parent seed and same salt must
  // reproduce the child exactly; distinct salts must give distinct streams.
  nws::Rng parent1(42);
  nws::Rng parent2(42);
  nws::Rng child_a1 = parent1.fork(1);
  nws::Rng child_a2 = parent2.fork(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a1.next_u64(), child_a2.next_u64());
  }

  nws::Rng parent3(42);
  nws::Rng c1 = parent3.fork(1);
  nws::Rng c2 = parent3.fork(2);
  nws::Rng c3 = parent3.fork(3);
  std::set<std::uint64_t> first_draws = {c1.next_u64(), c2.next_u64(), c3.next_u64()};
  EXPECT_EQ(first_draws.size(), 3u);
}

TEST(Rng, ForkAdvancesTheParentStream) {
  // fork() consumes one parent draw; two consecutive forks with the same
  // salt must therefore still produce different children.
  nws::Rng parent(42);
  nws::Rng c1 = parent.fork(9);
  nws::Rng c2 = parent.fork(9);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, NextDoubleIsInUnitInterval) {
  nws::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowStaysInRangeAndHitsAllResidues) {
  nws::Rng rng(2);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const std::uint64_t x = rng.next_below(7);
    ASSERT_LT(x, 7u);
    ++hits[static_cast<std::size_t>(x)];
  }
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(Rng, UniformRespectsBounds) {
  nws::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-2.5, 4.5);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 4.5);
  }
}

TEST(Rng, NormalHasPlausibleMoments) {
  nws::Rng rng(4);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, LognormalJitterHasUnitMedian) {
  nws::Rng rng(5);
  const int n = 20000;
  int below_one = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_jitter(0.3);
    ASSERT_GT(x, 0.0);
    if (x < 1.0) ++below_one;
  }
  // Median of exp(sigma*N(0,1)) is exactly 1: about half the draws below.
  EXPECT_NEAR(static_cast<double>(below_one) / n, 0.5, 0.02);
}

TEST(Rng, Mix64IsAPermutationOnSamples) {
  // mix64 is used for placement hashing; distinct inputs must keep
  // distinct outputs (spot check — it is bijective by construction).
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(nws::mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
  EXPECT_EQ(nws::mix64(0), 0u);  // the finaliser's only fixed point we rely on being stable
  EXPECT_NE(nws::mix64(1), 1u);
}

}  // namespace
