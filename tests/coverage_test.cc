// Additional behavioural coverage across modules.
#include <gtest/gtest.h>

#include <set>

#include "daos/client.h"
#include "daos/cluster.h"
#include "harness/experiment.h"
#include "ior/ior.h"
#include "lustre/lustre.h"

namespace nws {
namespace {

using daos::ObjectClass;
using daos::ObjectId;
using daos::ObjectType;

struct DaosFixture {
  sim::Scheduler sched;
  std::unique_ptr<daos::Cluster> cluster;

  explicit DaosFixture(daos::PayloadMode mode = daos::PayloadMode::digest, std::size_t servers = 1) {
    daos::ClusterConfig cfg = bench::testbed_config(servers, 1);
    cfg.payload_mode = mode;
    cluster = std::make_unique<daos::Cluster>(sched, cfg);
  }

  template <typename Body>
  void run(Body body) {
    auto proc = [](daos::Cluster& cl, Body b) -> sim::Task<void> {
      daos::Client client(cl, cl.client_endpoint(0, 0), 0);
      co_await b(client);
    };
    sched.spawn(proc(*cluster, std::move(body)));
    sched.run();
  }
};

TEST(ClientKvTest, RemoveAndListThroughApi) {
  DaosFixture fx;
  fx.run([](daos::Client& c) -> sim::Task<void> {
    daos::ContHandle cont = co_await c.main_cont_open();
    daos::KvHandle kv =
        co_await c.kv_open(cont, ObjectId::generate(0, 77, ObjectType::key_value, ObjectClass::SX));
    for (int i = 0; i < 5; ++i) {
      (co_await c.kv_put(kv, "step=" + std::to_string(i), "oid")).expect_ok("put");
    }
    EXPECT_EQ((co_await c.kv_list(kv)).size(), 5u);
    (co_await c.kv_remove(kv, "step=2")).expect_ok("remove");
    EXPECT_EQ((co_await c.kv_remove(kv, "step=2")).code(), Errc::not_found);
    const auto keys = co_await c.kv_list(kv);
    EXPECT_EQ(keys.size(), 4u);
    EXPECT_EQ(std::count(keys.begin(), keys.end(), "step=2"), 0);
  });
}

TEST(ClientEpochSurfaceTest, SnapshotHandlesAreStrictlyReadOnly) {
  // The epoch API's error surface at the client layer (docs/EPOCHS.md):
  // every mutation through a pinned handle is rejected up front, and the
  // epoch operations themselves reject the wrong handle kind.
  DaosFixture fx(daos::PayloadMode::full);
  fx.run([](daos::Client& c) -> sim::Task<void> {
    daos::ContHandle cont = co_await c.main_cont_open();
    daos::KvHandle kv =
        co_await c.kv_open(cont, ObjectId::generate(8, 1, ObjectType::key_value, ObjectClass::SX));
    (co_await c.kv_put(kv, "k", "committed")).expect_ok("put");
    const daos::Epoch epoch = (co_await c.cont_commit(cont)).value();

    daos::ContHandle snap = (co_await c.cont_snapshot(cont, epoch)).value();
    daos::KvHandle pinned = co_await c.kv_open(snap, kv.oid);
    EXPECT_EQ((co_await c.kv_put(pinned, "k", "x")).code(), Errc::invalid);
    EXPECT_EQ((co_await c.kv_remove(pinned, "k")).code(), Errc::invalid);
    const ObjectId array_oid = ObjectId::generate(8, 2, ObjectType::array, ObjectClass::S1);
    EXPECT_EQ((co_await c.array_create(snap, array_oid, 1, 1_MiB)).status().code(), Errc::invalid);
    EXPECT_EQ((co_await c.array_destroy(snap, array_oid)).code(), Errc::invalid);
    // Epoch ops on the wrong handle kind: commit needs a live handle, close
    // needs a pinned one.
    EXPECT_EQ((co_await c.cont_commit(snap)).status().code(), Errc::invalid);
    EXPECT_EQ((co_await c.snapshot_close(cont)).code(), Errc::invalid);

    // A key written after the pin is invisible through it, including listing.
    (co_await c.kv_put(kv, "later", "v")).expect_ok("put");
    [[maybe_unused]] const auto committed = (co_await c.cont_commit(cont)).value();
    EXPECT_EQ((co_await c.kv_get(pinned, "later")).status().code(), Errc::not_found);
    EXPECT_EQ((co_await c.kv_list(pinned)).size(), 1u);
    EXPECT_EQ((co_await c.kv_list(kv)).size(), 2u);

    // An array created after the pin does not exist in the snapshot.
    [[maybe_unused]] const auto created =
        (co_await c.array_create(cont, array_oid, 1, 1_MiB)).value();
    EXPECT_EQ((co_await c.array_open(snap, array_oid)).status().code(), Errc::not_found);
    (co_await c.snapshot_close(snap)).expect_ok("close");
    co_return;
  });
}

TEST(PlacementTest, SxKvShardsSpreadAcrossEngines) {
  // A shared SX Key-Value must distribute dkeys over every engine, or the
  // Fig. 4 contention model would concentrate on one socket.
  DaosFixture fx(daos::PayloadMode::digest, 2);  // 4 engines, 48 targets
  const ObjectId kv = ObjectId::generate(1, 1, ObjectType::key_value, ObjectClass::SX);
  std::set<std::size_t> engines;
  for (int i = 0; i < 200; ++i) {
    const std::size_t shard = fx.cluster->shard_for_key(kv, "'step': '" + std::to_string(i) + "'");
    engines.insert(fx.cluster->target(shard).engine);
  }
  EXPECT_EQ(engines.size(), fx.cluster->engine_count());
}

TEST(ArrayConflictTest, ConcurrentOpsOnOneObjectSerialise) {
  // The paper's "no index" mode observation: re-writer and reader of the
  // same Array contend at the Array level (Section 5.3).
  auto run_with = [](bool same_object) {
    sim::Scheduler sched;
    daos::ClusterConfig cfg = bench::testbed_config(1, 1);
    daos::Cluster cluster(sched, cfg);
    auto proc = [](daos::Cluster& cl, int rank, bool shared) -> sim::Task<void> {
      daos::Client client(cl, cl.client_endpoint(0, static_cast<std::size_t>(rank)),
                          static_cast<std::uint64_t>(rank));
      daos::ContHandle cont = co_await client.main_cont_open();
      const ObjectId oid = ObjectId::generate(9, shared ? 1 : static_cast<std::uint64_t>(rank + 1),
                                              ObjectType::array, ObjectClass::S1);
      auto created = co_await client.array_create(cont, oid, 1, 1_MiB);
      daos::ArrayHandle handle;
      if (created.is_ok()) {
        handle = created.value();
      } else {
        handle = (co_await client.array_open(cont, oid)).value();
      }
      for (int i = 0; i < 6; ++i) {
        (co_await client.array_write(handle, 0, nullptr, 2_MiB)).expect_ok("write");
      }
    };
    sched.spawn(proc(cluster, 0, same_object));
    sched.spawn(proc(cluster, 1, same_object));
    sched.run();
    return sched.now();
  };
  // Same object: writes serialise on the object lock; distinct objects may
  // overlap (they still share the engine cap, so require only a clear gap).
  EXPECT_GT(static_cast<double>(run_with(true)), static_cast<double>(run_with(false)) * 1.2);
}

TEST(IorSchemeTest, PerSegmentMovesSameBytes) {
  for (const ior::TransferScheme scheme :
       {ior::TransferScheme::single_shot, ior::TransferScheme::per_segment}) {
    sim::Scheduler sched;
    daos::Cluster cluster(sched, bench::testbed_config(1, 1));
    ior::IorParams params;
    params.segments = 8;
    params.processes_per_node = 2;
    params.scheme = scheme;
    const ior::IorResult result = ior::run_ior(cluster, params);
    ASSERT_FALSE(result.failed) << result.failure;
    EXPECT_EQ(result.write_log.total_bytes(), 2u * 8u * 1_MiB);
    EXPECT_EQ(result.read_log.total_bytes(), 2u * 8u * 1_MiB);
    // Functional outcome identical: the arrays hold the full object.
    EXPECT_EQ(cluster.pool_used(), 2u * 8u * 1_MiB);
  }
}

TEST(IorSchemeTest, PerSegmentNeverFasterWhenLatencyBound) {
  ior::IorParams base;
  base.segments = 20;
  base.processes_per_node = 2;  // latency-bound: overheads visible
  ior::IorParams seg = base;
  seg.scheme = ior::TransferScheme::per_segment;
  const bench::RunOutcome one = bench::run_ior_once(bench::testbed_config(1, 1), base, 3);
  const bench::RunOutcome per = bench::run_ior_once(bench::testbed_config(1, 1), seg, 3);
  ASSERT_FALSE(one.failed);
  ASSERT_FALSE(per.failed);
  EXPECT_LE(per.write_bw, one.write_bw * 1.02);
  EXPECT_LE(per.read_bw, one.read_bw * 1.02);
}

TEST(LustreStripeTest, StripeCountClampedToOsts) {
  sim::Scheduler sched;
  lustre::LustreConfig cfg;
  cfg.osts = 4;
  cfg.client_nodes = 1;
  lustre::LustreSystem system(sched, cfg);
  auto proc = [](lustre::LustreSystem& sys) -> sim::Task<void> {
    lustre::LustreClient client(sys, sys.client_endpoint(0, 0), 0);
    // Request far more stripes than OSTs exist; writes must still balance.
    auto file = (co_await client.create("/wide", 64, 1_MiB)).value();
    (co_await client.write(file, 0, 16_MiB)).expect_ok("write");
    EXPECT_EQ(co_await client.file_size(file), 16_MiB);
  };
  sched.spawn(proc(system));
  sched.run();
}

TEST(JitterTest, SeedChangesTimingButNotOutcome) {
  auto run_with_seed = [](std::uint64_t seed) {
    sim::Scheduler sched;
    daos::ClusterConfig cfg = bench::testbed_config(1, 1);
    cfg.seed = seed;
    daos::Cluster cluster(sched, cfg);
    ior::IorParams params;
    params.segments = 10;
    params.processes_per_node = 4;
    const ior::IorResult result = ior::run_ior(cluster, params);
    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.write_log.operations(), 4u);
    return result.write_log.total_wall_clock();
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));  // jitter differs
  EXPECT_EQ(run_with_seed(1), run_with_seed(1));  // but deterministically
}

TEST(FaultInjectionTest, PartialFailureRateDegradesGracefully) {
  sim::Scheduler sched;
  daos::ClusterConfig cfg = bench::testbed_config(1, 1);
  cfg.faults.io_failure_rate = 0.3;
  daos::Cluster cluster(sched, cfg);
  int ok = 0;
  int failed = 0;
  auto proc = [](daos::Cluster& cl, int* ok_count, int* fail_count) -> sim::Task<void> {
    daos::Client client(cl, cl.client_endpoint(0, 0), 0);
    daos::ContHandle cont = co_await client.main_cont_open();
    for (std::uint64_t i = 0; i < 60; ++i) {
      const ObjectId oid = ObjectId::generate(3, i, ObjectType::array, ObjectClass::S1);
      auto arr = co_await client.array_create(cont, oid, 1, 1_MiB);
      auto handle = arr.value();
      const Status st = co_await client.array_write(handle, 0, nullptr, 1_MiB);
      st.is_ok() ? ++*ok_count : ++*fail_count;
      co_await client.array_close(handle);
    }
  };
  sched.spawn(proc(cluster, &ok, &failed));
  sched.run();
  // Roughly 30% of operations fail; the rest complete normally.
  EXPECT_GT(failed, 5);
  EXPECT_GT(ok, 20);
  EXPECT_EQ(ok + failed, 60);
}

}  // namespace
}  // namespace nws
