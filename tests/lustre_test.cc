// Tests for the Lustre baseline model.
#include <gtest/gtest.h>

#include "lustre/lustre.h"
#include "sim/when_all.h"

namespace nws::lustre {
namespace {

using nws::operator""_MiB;
using nws::operator""_GiB;
using nws::operator""_TiB;

LustreConfig small_config() {
  LustreConfig cfg;
  cfg.osts = 8;
  cfg.client_nodes = 2;
  return cfg;
}

template <typename Body>
void run_client(LustreSystem& system, Body body) {
  auto proc = [](LustreSystem& sys, Body b) -> sim::Task<void> {
    LustreClient client(sys, sys.client_endpoint(0, 0), 0);
    co_await b(client);
  };
  system.scheduler().spawn(proc(system, std::move(body)));
  system.scheduler().run();
}

TEST(LustreSystemTest, EcmwfGeometry) {
  // Paper 1.2: ~300 OSTs x 10 spinning disks of 2 TiB.
  sim::Scheduler sched;
  LustreConfig cfg;
  LustreSystem system(sched, cfg);
  EXPECT_EQ(system.ost_count(), 300u);
  EXPECT_EQ(system.capacity(), 300u * 10u * 2_TiB);
  // Aggregate streaming bandwidth ~165 GiB/s.
  EXPECT_NEAR(to_gib_per_sec(system.ost_stream_bandwidth() * 300.0), 165.0, 1.0);
}

TEST(LustreFileTest, CreateOpenSemantics) {
  sim::Scheduler sched;
  LustreSystem system(sched, small_config());
  run_client(system, [](LustreClient& client) -> sim::Task<void> {
    const auto missing = co_await client.open("/fc/output.grib");
    EXPECT_EQ(missing.status().code(), Errc::not_found);
    auto created = co_await client.create("/fc/output.grib");
    EXPECT_TRUE(created.is_ok());
    const auto duplicate = co_await client.create("/fc/output.grib");
    EXPECT_EQ(duplicate.status().code(), Errc::already_exists);
    const auto opened = co_await client.open("/fc/output.grib");
    EXPECT_TRUE(opened.is_ok());
    EXPECT_EQ(opened.value().inode, created.value().inode);
  });
  EXPECT_EQ(system.file_count(), 1u);
}

TEST(LustreFileTest, WriteReadRoundTripSizes) {
  sim::Scheduler sched;
  LustreSystem system(sched, small_config());
  run_client(system, [](LustreClient& client) -> sim::Task<void> {
    auto file = (co_await client.create("/f", 4, 1_MiB)).value();
    (co_await client.write(file, 0, 10_MiB)).expect_ok("write");
    EXPECT_EQ(co_await client.file_size(file), 10_MiB);
    EXPECT_EQ((co_await client.read(file, 0, 10_MiB)).value(), 10_MiB);
    EXPECT_EQ((co_await client.read(file, 8_MiB, 10_MiB)).value(), 2_MiB);  // clamped
    EXPECT_EQ((co_await client.read(file, 20_MiB, 1_MiB)).value(), 0u);     // past EOF
    co_await client.close(file);
    EXPECT_FALSE(file.valid());
  });
}

TEST(LustreFileTest, StaleHandleRejected) {
  sim::Scheduler sched;
  LustreSystem system(sched, small_config());
  run_client(system, [](LustreClient& client) -> sim::Task<void> {
    FileHandle bogus{999};
    EXPECT_EQ((co_await client.write(bogus, 0, 1_MiB)).code(), Errc::invalid);
    EXPECT_EQ((co_await client.read(bogus, 0, 1_MiB)).status().code(), Errc::invalid);
  });
}

TEST(LustrePosixTest, SharedFileWritesSerialise) {
  // The POSIX consistency cost the paper contrasts object semantics with:
  // N writers to one shared file serialise; N writers to N files do not.
  auto run_with = [](bool shared) {
    sim::Scheduler sched;
    LustreConfig cfg;
    cfg.osts = 16;
    cfg.client_nodes = 2;
    LustreSystem system(sched, cfg);
    const int writers = 8;
    auto writer = [](LustreSystem& sys, int rank, bool shared_file) -> sim::Task<void> {
      LustreClient client(sys, sys.client_endpoint(0, static_cast<std::size_t>(rank)),
                          static_cast<std::uint64_t>(rank));
      const std::string path = shared_file ? "/shared" : "/file." + std::to_string(rank);
      auto created = co_await client.create(path);
      FileHandle file;
      if (created.is_ok()) {
        file = created.value();
      } else {
        file = (co_await client.open(path)).value();
      }
      for (int i = 0; i < 4; ++i) {
        (co_await client.write(file, static_cast<Bytes>(rank * 64 + i * 16) * 1_MiB, 16_MiB))
            .expect_ok("write");
      }
    };
    for (int r = 0; r < writers; ++r) sched.spawn(writer(system, r, shared));
    sched.run();
    return sched.now();
  };
  const auto shared_time = run_with(true);
  const auto private_time = run_with(false);
  EXPECT_GT(static_cast<double>(shared_time), static_cast<double>(private_time) * 2.0);
}

TEST(LustreMixedLoadTest, MixedReadWriteSlowerThanStreaming) {
  // Spinning-disk seek degradation: interleaved read+write on the same OSTs
  // delivers far less than pure streaming — the 165 vs 50 GiB/s gap.
  auto run_with = [](bool mixed) {
    sim::Scheduler sched;
    LustreConfig cfg;
    cfg.osts = 4;
    cfg.client_nodes = 2;
    LustreSystem system(sched, cfg);
    const int pairs = 4;
    // Readers consume the writers' own files so both runs exercise exactly
    // the same OST set; only the read/write mixing differs.
    auto writer = [](LustreSystem& sys, int rank, int ops) -> sim::Task<void> {
      LustreClient client(sys, sys.client_endpoint(0, static_cast<std::size_t>(rank)),
                          static_cast<std::uint64_t>(rank));
      auto file = (co_await client.create("/w." + std::to_string(rank), 1, 1_MiB)).value();
      for (int i = 0; i < ops; ++i) (co_await client.write(file, 0, 4_MiB)).expect_ok("write");
    };
    auto reader = [](LustreSystem& sys, int rank, int ops) -> sim::Task<void> {
      LustreClient client(sys, sys.client_endpoint(1, static_cast<std::size_t>(rank)),
                          0x100u + static_cast<std::uint64_t>(rank));
      Result<FileHandle> opened = Status::error(Errc::not_found, "pending");
      while (!opened.is_ok()) {
        opened = co_await client.open("/w." + std::to_string(rank));
      }
      auto file = opened.value();
      // Wait for the first write to land before streaming reads.
      while (co_await client.file_size(file) < 4_MiB) {
        co_await sys.scheduler().delay(sim::milliseconds(1));
      }
      for (int i = 0; i < ops; ++i) {
        EXPECT_EQ((co_await client.read(file, 0, 4_MiB)).value(), 4_MiB);
      }
    };
    for (int r = 0; r < pairs; ++r) {
      sched.spawn(writer(system, r, 10));
      if (mixed) sched.spawn(reader(system, r, 10));
    }
    sched.run();
    const double bytes = mixed ? 2.0 * pairs * 10 * 4.0 : pairs * 10 * 4.0;  // MiB moved
    return bytes / sim::to_seconds(sched.now());
  };
  const double streaming = run_with(false);
  const double mixed = run_with(true);
  // Mixed throughput per byte moved must be well below streaming (the
  // paper's ~50/165 sustained-to-peak ratio motivates ~0.3-0.6 here, as the
  // reader and writer populations also double the demand).
  EXPECT_LT(mixed, streaming * 0.75);
}

TEST(LustreMdsTest, MetadataRateBounded) {
  // Creating many files is MDS-bound: 2x the creates takes ~2x the time
  // once the op-rate service saturates.
  auto run_with = [](int files) {
    sim::Scheduler sched;
    LustreConfig cfg;
    cfg.osts = 4;
    cfg.client_nodes = 1;
    cfg.mds_ops_per_second = 1000;  // slow MDS to expose the bound
    LustreSystem system(sched, cfg);
    const int procs = 8;
    auto creator = [](LustreSystem& sys, int rank, int count) -> sim::Task<void> {
      LustreClient client(sys, sys.client_endpoint(0, static_cast<std::size_t>(rank)),
                          static_cast<std::uint64_t>(rank));
      for (int i = 0; i < count; ++i) {
        (void)co_await client.create("/meta." + std::to_string(rank) + "." + std::to_string(i));
      }
    };
    for (int r = 0; r < procs; ++r) sched.spawn(creator(system, r, files / procs));
    sched.run();
    return sim::to_seconds(sched.now());
  };
  const double t1 = run_with(800);
  const double t2 = run_with(1600);
  EXPECT_NEAR(t2 / t1, 2.0, 0.4);
}

TEST(LustreConfigTest, InvalidConfigsRejected) {
  sim::Scheduler sched;
  LustreConfig cfg;
  cfg.osts = 0;
  EXPECT_THROW(LustreSystem(sched, cfg), std::invalid_argument);
  cfg = LustreConfig{};
  cfg.client_nodes = 0;
  EXPECT_THROW(LustreSystem(sched, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nws::lustre
