// Unit, integration and property tests for the DAOS simulator.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "daos/client.h"
#include "daos/cluster.h"
#include "sim/when_all.h"

namespace nws::daos {
namespace {

using nws::operator""_KiB;
using nws::operator""_MiB;
using nws::operator""_GiB;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.server_nodes = 1;
  cfg.client_nodes = 1;
  cfg.payload_mode = PayloadMode::full;
  return cfg;
}

/// Runs `body` as a single simulated client process and returns the
/// simulated completion time.
template <typename Body>
sim::TimePoint run_client(Cluster& cluster, Body body) {
  sim::Scheduler& sched = cluster.scheduler();
  sim::TimePoint done = -1;
  auto proc = [](Cluster& cl, Body b, sim::TimePoint* out) -> sim::Task<void> {
    Client client(cl, cl.client_endpoint(0, 0), 0);
    co_await b(client);
    *out = cl.scheduler().now();
  };
  sched.spawn(proc(cluster, std::move(body), &done));
  sched.run();
  return done;
}

TEST(ObjectIdTest, EncodesTypeAndClass) {
  const ObjectId oid = ObjectId::generate(0x12345678u, 0xabcdef0123456789ull, ObjectType::array,
                                          ObjectClass::S2);
  EXPECT_EQ(oid.type(), ObjectType::array);
  EXPECT_EQ(oid.oclass(), ObjectClass::S2);
  EXPECT_EQ(oid.lo, 0xabcdef0123456789ull);
  EXPECT_EQ(oid.hi & 0xffffffffull, 0x12345678ull);
}

TEST(ObjectIdTest, FromDigestDeterministic) {
  const ObjectId a = ObjectId::from_digest(md5("field-key"), ObjectType::array, ObjectClass::S1);
  const ObjectId b = ObjectId::from_digest(md5("field-key"), ObjectType::array, ObjectClass::S1);
  const ObjectId c = ObjectId::from_digest(md5("other-key"), ObjectType::array, ObjectClass::S1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ObjectIdTest, ClassNames) {
  EXPECT_STREQ(object_class_name(ObjectClass::SX), "SX");
  EXPECT_EQ(object_class_by_name("S2"), ObjectClass::S2);
  EXPECT_THROW(object_class_by_name("RP_2G1"), std::invalid_argument);
}

TEST(UuidTest, Md5DerivationMatchesPaperConvention) {
  // Section 4: "container IDs computed as md5 sums of the most-significant
  // part of the key".
  const std::string msk = "'class': 'od', 'date': '20201224'";
  const Uuid u = Uuid::from_string_md5(msk);
  const Md5Digest d = md5(msk);
  EXPECT_EQ(u.hi, d.hi64());
  EXPECT_EQ(u.lo, d.lo64());
  EXPECT_EQ(Uuid::from_string_md5(msk), u);  // concurrent creators collide on the same id
}

TEST(UuidTest, StringRendering) {
  const Uuid u = Uuid::from_string_md5("x");
  EXPECT_EQ(u.to_string().size(), 36u);
  EXPECT_EQ(u.to_string()[8], '-');
}

TEST(ClusterConfigTest, Validation) {
  ClusterConfig cfg = small_config();
  EXPECT_TRUE(cfg.validate().is_ok());
  cfg.server_nodes = 0;
  EXPECT_EQ(cfg.validate().code(), Errc::invalid);
  cfg = small_config();
  cfg.engines_per_server = 3;
  EXPECT_EQ(cfg.validate().code(), Errc::invalid);
}

TEST(ClusterConfigTest, Psm2DualRailRejected) {
  // Paper 6.1.1: PSM2 cannot run dual-engine / dual-rail deployments.
  ClusterConfig cfg = small_config();
  cfg.provider = net::psm2_provider();
  EXPECT_EQ(cfg.validate().code(), Errc::unsupported);

  cfg.engines_per_server = 1;
  cfg.client_sockets_in_use = 1;
  EXPECT_TRUE(cfg.validate().is_ok());

  // With the constraint emulation disabled the config is accepted.
  cfg = small_config();
  cfg.provider = net::psm2_provider();
  cfg.faults.enforce_psm2_single_rail = false;
  EXPECT_TRUE(cfg.validate().is_ok());
}

TEST(ClusterTest, StructureMatchesPaperDeployment) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.server_nodes = 4;
  cfg.client_nodes = 8;
  Cluster cluster(sched, cfg);
  // 2 engines per node, 12 targets per engine (paper 6.1).
  EXPECT_EQ(cluster.engine_count(), 8u);
  EXPECT_EQ(cluster.target_count(), 96u);
  EXPECT_EQ(cluster.region_count(), 8u);
  // 6 x 256 GiB DCPMM per socket = 1.5 TiB per region, 3 TiB per node.
  EXPECT_EQ(cluster.region(0).capacity(), 1536_GiB);
  EXPECT_EQ(cluster.pool_capacity(), 8u * 1536_GiB);
}

TEST(ClusterTest, ClientPinningBalancedAcrossSockets) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  EXPECT_EQ(cluster.client_endpoint(0, 0).socket, 0u);
  EXPECT_EQ(cluster.client_endpoint(0, 1).socket, 1u);
  EXPECT_EQ(cluster.client_endpoint(0, 2).socket, 0u);
  EXPECT_EQ(cluster.client_endpoint(0, 0).node, 1u);  // clients follow servers
}

TEST(ClusterTest, PlacementRespectsObjectClass) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.server_nodes = 2;
  Cluster cluster(sched, cfg);

  const ObjectId s1 = ObjectId::generate(1, 1, ObjectType::array, ObjectClass::S1);
  const ObjectId s2 = ObjectId::generate(1, 1, ObjectType::array, ObjectClass::S2);
  const ObjectId sx = ObjectId::generate(1, 1, ObjectType::array, ObjectClass::SX);
  EXPECT_EQ(cluster.stripe_targets(s1).size(), 1u);
  EXPECT_EQ(cluster.stripe_targets(s2).size(), 2u);
  EXPECT_EQ(cluster.stripe_targets(sx).size(), cluster.target_count());

  // Placement is deterministic.
  EXPECT_EQ(cluster.stripe_targets(s1), cluster.stripe_targets(s1));
}

TEST(ClusterTest, PlacementSpreadsObjects) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.server_nodes = 2;
  Cluster cluster(sched, cfg);
  std::vector<std::size_t> load(cluster.target_count(), 0);
  const std::size_t n = 4800;
  for (std::size_t i = 0; i < n; ++i) {
    const ObjectId oid = ObjectId::generate(7, i, ObjectType::array, ObjectClass::S1);
    ++load[cluster.stripe_targets(oid)[0]];
  }
  // Mean 100 per target; no target should be wildly hot or empty.
  for (const std::size_t l : load) {
    EXPECT_GT(l, 50u);
    EXPECT_LT(l, 200u);
  }
}

TEST(ClusterTest, ShardForKeyStaysInStripe) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.server_nodes = 2;
  Cluster cluster(sched, cfg);
  const ObjectId kv = ObjectId::generate(3, 9, ObjectType::key_value, ObjectClass::S2);
  const auto stripe = cluster.stripe_targets(kv);
  for (int i = 0; i < 50; ++i) {
    const std::size_t shard = cluster.shard_for_key(kv, "key" + std::to_string(i));
    EXPECT_TRUE(shard == stripe[0] || shard == stripe[1]);
  }
}

TEST(ClusterTest, PathsIncludeServiceAndMedia) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  const Target& t = cluster.target(0);
  const net::Endpoint client = cluster.client_endpoint(0, 0);
  const auto wp = cluster.write_path(client, t);
  const auto rp = cluster.read_path(client, t);
  // Write: nic tx, nic rx, engine write, target write, scm write, node I/O
  // cap (same rail, no UPI).
  EXPECT_EQ(wp.size(), 6u);
  EXPECT_EQ(rp.size(), 6u);
  EXPECT_NE(wp, rp);
  // Cross-rail target: both directions cross the server's UPI (connections
  // follow the client's rail).
  const Target& other_socket = cluster.target(cluster.config().targets_per_engine);
  EXPECT_EQ(cluster.write_path(client, other_socket).size(), 7u);
  EXPECT_EQ(cluster.read_path(client, other_socket).size(), 7u);
  // Server-local service work touches engine + target only.
  EXPECT_EQ(cluster.service_path(0, true).size(), 1u);
}

TEST(ContainerTest, CreateOpenSemantics) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  const Uuid uuid = Uuid::from_string_md5("forecast-1");
  EXPECT_EQ(cluster.open_container(uuid).status().code(), Errc::not_found);
  EXPECT_TRUE(cluster.create_container(uuid).is_ok());
  EXPECT_EQ(cluster.create_container(uuid).code(), Errc::already_exists);
  EXPECT_TRUE(cluster.open_container(uuid).is_ok());
  EXPECT_EQ(cluster.container_count(), 2u);  // main + forecast
  EXPECT_TRUE(cluster.main_container().is_main());
}

TEST(ContainerTest, ContainerIssueEmulation) {
  // Paper Section 7: full-mode pattern A with low contention failed beyond
  // 8 server nodes.
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.server_nodes = 10;
  cfg.client_nodes = 2;
  cfg.faults.container_create_issue = true;
  cfg.faults.container_issue_threshold = 4;
  Cluster cluster(sched, cfg);
  Status last = Status::ok();
  for (int i = 0; i < 8; ++i) {
    last = cluster.create_container(Uuid::from_string_md5("c" + std::to_string(i)));
  }
  EXPECT_EQ(last.code(), Errc::unavailable);

  // At 8 server nodes or below the same workload succeeds.
  sim::Scheduler sched2;
  cfg.server_nodes = 8;
  Cluster cluster2(sched2, cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(cluster2.create_container(Uuid::from_string_md5("c" + std::to_string(i))).is_ok());
  }
}

TEST(KvObjectTest, PutGetRemoveList) {
  sim::Scheduler sched;
  KvObject kv(sched);
  kv.put("step=0", "oid-1");
  kv.put("step=1", "oid-2");
  kv.put("step=0", "oid-3");  // overwrite
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv.get("step=0").value(), "oid-3");
  EXPECT_EQ(kv.get("missing").status().code(), Errc::not_found);
  EXPECT_EQ(kv.list(), (std::vector<std::string>{"step=0", "step=1"}));
  EXPECT_TRUE(kv.remove("step=1").is_ok());
  EXPECT_EQ(kv.remove("step=1").code(), Errc::not_found);
  EXPECT_EQ(kv.size(), 1u);
}

TEST(ArrayObjectTest, FullModeRoundTrip) {
  sim::Scheduler sched;
  ArrayObject arr(sched, 1, 1_MiB, PayloadMode::full);
  std::vector<std::uint8_t> data(300);
  std::iota(data.begin(), data.end(), 0);
  arr.write(0, data.data(), data.size());
  EXPECT_EQ(arr.size(), 300u);

  std::vector<std::uint8_t> out(300);
  EXPECT_EQ(arr.read(0, out.data(), out.size()), 300u);
  EXPECT_EQ(out, data);

  // Partial read past the end clamps.
  EXPECT_EQ(arr.read(200, out.data(), 300), 100u);
  EXPECT_EQ(arr.read(300, out.data(), 10), 0u);
}

TEST(ArrayObjectTest, DigestModeTracksChecksumWithoutBytes) {
  sim::Scheduler sched;
  std::vector<std::uint8_t> data(4096, 0x5a);
  ArrayObject full(sched, 1, 1_MiB, PayloadMode::full);
  ArrayObject digest(sched, 1, 1_MiB, PayloadMode::digest);
  full.write(0, data.data(), data.size());
  digest.write(0, data.data(), data.size());
  EXPECT_EQ(full.checksum(), digest.checksum());
  EXPECT_EQ(digest.size(), full.size());
  // Digest mode reads report length without materialising bytes.
  EXPECT_EQ(digest.read(0, nullptr, 4096), 4096u);
}

TEST(ArrayObjectTest, SparseWriteExtendsSize) {
  sim::Scheduler sched;
  ArrayObject arr(sched, 1, 1_MiB, PayloadMode::full);
  std::vector<std::uint8_t> data(10, 0xff);
  arr.write(1000, data.data(), data.size());
  EXPECT_EQ(arr.size(), 1010u);
  std::uint8_t byte = 1;
  EXPECT_EQ(arr.read(500, &byte, 1), 1u);
  EXPECT_EQ(byte, 0u);  // hole reads as zero
}

TEST(ClientTest, PoolConnectAndMainContainer) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  const sim::TimePoint t = run_client(cluster, [](Client& c) -> sim::Task<void> {
    const PoolHandle pool = co_await c.pool_connect();
    EXPECT_TRUE(pool.connected);
    ContHandle main = co_await c.main_cont_open();
    EXPECT_TRUE(main.valid());
    EXPECT_TRUE(main.container->is_main());
  });
  EXPECT_GT(t, 0);  // operations consumed simulated time
}

TEST(ClientTest, KvRoundTripThroughApi) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    KvHandle kv = co_await c.kv_open(main, ObjectId::generate(0, 1, ObjectType::key_value, ObjectClass::SX));
    (co_await c.kv_put(kv, "'date':'20201224'", "forecast-uuid")).expect_ok("kv_put");
    const auto got = co_await c.kv_get(kv, "'date':'20201224'");
    EXPECT_EQ(got.value(), "forecast-uuid");
    const auto missing = co_await c.kv_get(kv, "absent");
    EXPECT_EQ(missing.status().code(), Errc::not_found);
    co_await c.kv_close(kv);
  });
}

TEST(ClientTest, KvListOrderingContract) {
  // kv_list guarantees lexicographic key order regardless of insertion or
  // removal history — namespace layers (dfs readdir, catalogue walks) fold
  // results in list order, so this contract is what keeps them bit-identical.
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    KvHandle kv =
        co_await c.kv_open(main, ObjectId::generate(0, 21, ObjectType::key_value, ObjectClass::SX));
    static constexpr const char* kKeys[] = {"zeta", "alpha", "mid", "alpha2", "b"};
    for (const char* key : kKeys) {
      (co_await c.kv_put(kv, key, "v")).expect_ok("kv_put");
    }
    const std::vector<std::string> first = co_await c.kv_list(kv);
    EXPECT_EQ(first, (std::vector<std::string>{"alpha", "alpha2", "b", "mid", "zeta"}));
    (co_await c.kv_remove(kv, "mid")).expect_ok("kv_remove");
    (co_await c.kv_put(kv, "aa", "v")).expect_ok("kv_put");
    const std::vector<std::string> second = co_await c.kv_list(kv);
    EXPECT_EQ(second, (std::vector<std::string>{"aa", "alpha", "alpha2", "b", "zeta"}));
    co_await c.kv_close(kv);
  });
}

TEST(ClientTest, KvPutIfAbsentOneWinner) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    KvHandle kv =
        co_await c.kv_open(main, ObjectId::generate(0, 22, ObjectType::key_value, ObjectClass::SX));
    (co_await c.kv_put_if_absent(kv, "k", "first")).expect_ok("kv_put_if_absent");
    EXPECT_EQ((co_await c.kv_put_if_absent(kv, "k", "second")).code(), Errc::already_exists);
    EXPECT_EQ((co_await c.kv_get(kv, "k")).value(), "first");  // loser changed nothing
    co_await c.kv_close(kv);
  });
}

TEST(ClientTest, KvPutIfAbsentConcurrentRacersSeeOneWinner) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  int winners = 0;
  auto racer = [](Cluster& cl, std::uint32_t rank, int* wins) -> sim::Task<void> {
    Client c(cl, cl.client_endpoint(0, rank), rank);
    ContHandle main = co_await c.main_cont_open();
    KvHandle kv =
        co_await c.kv_open(main, ObjectId::generate(0, 23, ObjectType::key_value, ObjectClass::SX));
    const std::string value = "r" + std::to_string(rank);
    const Status st = co_await c.kv_put_if_absent(kv, "slot", value);
    if (st.is_ok()) ++*wins;
    else EXPECT_EQ(st.code(), Errc::already_exists);
    co_await c.kv_close(kv);
  };
  for (std::uint32_t r = 0; r < 4; ++r) sched.spawn(racer(cluster, r, &winners));
  sched.run();
  EXPECT_EQ(winners, 1);
}

TEST(ClientTest, KvPutIfAbsentRejectedOnSnapshotHandle) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    (void)co_await c.cont_commit(main);
    auto snap = co_await c.cont_snapshot(main);
    EXPECT_TRUE(snap.is_ok());
    if (snap.is_ok()) {
      KvHandle kv = co_await c.kv_open(
          snap.value(), ObjectId::generate(0, 24, ObjectType::key_value, ObjectClass::SX));
      EXPECT_EQ((co_await c.kv_put_if_absent(kv, "k", "v")).code(), Errc::invalid);
      co_await c.kv_close(kv);
      (void)co_await c.snapshot_close(snap.value());
    }
  });
}

TEST(ClientTest, ArrayWriteReadThroughApi) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    const ObjectId oid = ObjectId::generate(0, 2, ObjectType::array, ObjectClass::S1);
    auto arr = co_await c.array_create(main, oid, 1, 1_MiB);
    ArrayHandle handle = arr.value();  // throws if creation failed

    std::vector<std::uint8_t> data(256_KiB);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
    (co_await c.array_write(handle, 0, data.data(), data.size())).expect_ok("array_write");
    EXPECT_EQ(co_await c.array_get_size(handle), data.size());

    std::vector<std::uint8_t> out(data.size());
    const auto n = co_await c.array_read(handle, 0, out.data(), out.size());
    EXPECT_EQ(n.value(), data.size());
    EXPECT_EQ(out, data);
    co_await c.array_close(handle);

    // Re-open and re-read.
    auto reopened = co_await c.array_open(main, oid);
    auto again = reopened.value();  // throws if open failed
    const auto n2 = co_await c.array_read(again, 128_KiB, out.data(), 64_KiB);
    EXPECT_EQ(n2.value(), 64_KiB);
    EXPECT_TRUE(std::equal(out.begin(), out.begin() + 64_KiB, data.begin() + 128_KiB));
  });
}

TEST(ClientTest, ArrayCreateTwiceFails) {
  sim::Scheduler sched;
  Cluster cluster(sched, small_config());
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    const ObjectId oid = ObjectId::generate(0, 3, ObjectType::array, ObjectClass::S1);
    EXPECT_TRUE((co_await c.array_create(main, oid, 1, 1_MiB)).is_ok());
    const auto second = co_await c.array_create(main, oid, 1, 1_MiB);
    EXPECT_EQ(second.status().code(), Errc::already_exists);
    const auto absent =
        co_await c.array_open(main, ObjectId::generate(0, 99, ObjectType::array, ObjectClass::S1));
    EXPECT_EQ(absent.status().code(), Errc::not_found);
  });
}

TEST(ClientTest, WritesConsumePoolCapacity) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.payload_mode = PayloadMode::digest;
  Cluster cluster(sched, cfg);
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    const ObjectId oid = ObjectId::generate(0, 4, ObjectType::array, ObjectClass::S1);
    auto arr = co_await c.array_create(main, oid, 1, 1_MiB);
    auto handle = arr.value();
    (co_await c.array_write(handle, 0, nullptr, 8_MiB)).expect_ok("write");
    EXPECT_EQ(c.cluster().pool_used(), 8_MiB);
    // Overwrite does not grow the pool; extension charges only the delta.
    (co_await c.array_write(handle, 0, nullptr, 8_MiB)).expect_ok("rewrite");
    EXPECT_EQ(c.cluster().pool_used(), 8_MiB);
    (co_await c.array_write(handle, 8_MiB, nullptr, 2_MiB)).expect_ok("extend");
    EXPECT_EQ(c.cluster().pool_used(), 10_MiB);
  });
}

TEST(ClientTest, PoolExhaustionReturnsNoSpace) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.payload_mode = PayloadMode::digest;
  cfg.dcpmm.capacity = 1_MiB;  // tiny DCPMMs: 6 MiB per region
  Cluster cluster(sched, cfg);
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    Status last = Status::ok();
    for (std::size_t i = 0; i < 40 && last.is_ok(); ++i) {
      const ObjectId oid = ObjectId::generate(1, i, ObjectType::array, ObjectClass::S1);
      auto arr = co_await c.array_create(main, oid, 1, 1_MiB);
      auto handle = arr.value();
      last = co_await c.array_write(handle, 0, nullptr, 1_MiB);
    }
    EXPECT_EQ(last.code(), Errc::no_space);
  });
}

TEST(ClientTest, IoFailureInjection) {
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.payload_mode = PayloadMode::digest;
  cfg.faults.io_failure_rate = 1.0;  // always fail
  Cluster cluster(sched, cfg);
  run_client(cluster, [](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    const ObjectId oid = ObjectId::generate(0, 5, ObjectType::array, ObjectClass::S1);
    auto arr = co_await c.array_create(main, oid, 1, 1_MiB);
    auto handle = arr.value();
    EXPECT_EQ((co_await c.array_write(handle, 0, nullptr, 1_MiB)).code(), Errc::io_error);
    KvHandle kv = co_await c.kv_open(main, ObjectId::generate(0, 6, ObjectType::key_value, ObjectClass::S1));
    EXPECT_EQ((co_await c.kv_put(kv, "k", "v")).code(), Errc::io_error);
  });
}

TEST(ClientTest, LargerTransfersAreMoreEfficient) {
  // Fig. 6 mechanism: per-op overhead amortises with object size.
  auto time_for = [](Bytes size) {
    sim::Scheduler sched;
    ClusterConfig cfg = small_config();
    cfg.payload_mode = PayloadMode::digest;
    Cluster cluster(sched, cfg);
    sim::TimePoint start_write = 0;
    const sim::TimePoint t = run_client(cluster, [&](Client& c) -> sim::Task<void> {
      ContHandle main = co_await c.main_cont_open();
      const ObjectId oid = ObjectId::generate(0, 7, ObjectType::array, ObjectClass::S1);
      auto arr = co_await c.array_create(main, oid, 1, 1_MiB);
      auto handle = arr.value();
      start_write = c.cluster().scheduler().now();
      (co_await c.array_write(handle, 0, nullptr, size)).expect_ok("write");
    });
    return t - start_write;
  };
  // A single uncontended client amortises only the fixed RPC overhead (a few
  // percent at 1 MiB); the full Fig. 6 effect needs the field-I/O stack under
  // contention and is asserted in the harness integration tests.
  const double bw1 = static_cast<double>(1_MiB) / sim::to_seconds(time_for(1_MiB));
  const double bw10 = static_cast<double>(10_MiB) / sim::to_seconds(time_for(10_MiB));
  EXPECT_GT(bw10, bw1 * 1.02);
}

// Striping property: the shard extents of a write must conserve bytes and
// stay within the object's stripe, for every class and size.
struct StripeCase {
  ObjectClass oclass;
  Bytes size;
};

class StripingProperty : public ::testing::TestWithParam<StripeCase> {};

TEST_P(StripingProperty, RoundTripAcrossClassesAndSizes) {
  const auto [oclass, size] = GetParam();
  sim::Scheduler sched;
  ClusterConfig cfg = small_config();
  cfg.server_nodes = 2;
  cfg.payload_mode = PayloadMode::full;
  Cluster cluster(sched, cfg);
  run_client(cluster, [oclass = oclass, size = size](Client& c) -> sim::Task<void> {
    ContHandle main = co_await c.main_cont_open();
    const ObjectId oid = ObjectId::generate(2, 11, ObjectType::array, oclass);
    auto arr = co_await c.array_create(main, oid, 1, 1_MiB);
    auto handle = arr.value();

    std::vector<std::uint8_t> data(size);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i % 251);
    (co_await c.array_write(handle, 0, data.data(), data.size())).expect_ok("write");

    std::vector<std::uint8_t> out(size);
    const auto n = co_await c.array_read(handle, 0, out.data(), out.size());
    EXPECT_EQ(n.value(), size);
    EXPECT_EQ(out, data);
  });
}

INSTANTIATE_TEST_SUITE_P(ClassesAndSizes, StripingProperty,
                         ::testing::Values(StripeCase{ObjectClass::S1, 1_MiB},
                                           StripeCase{ObjectClass::S1, 5_MiB},
                                           StripeCase{ObjectClass::S2, 1_MiB},
                                           StripeCase{ObjectClass::S2, 10_MiB},
                                           StripeCase{ObjectClass::SX, 1_MiB},
                                           StripeCase{ObjectClass::SX, 20_MiB},
                                           StripeCase{ObjectClass::SX, 3_MiB + 123_KiB}));

// Contention property: concurrent writers to a shared KV serialise; the
// wall-clock must grow superlinearly versus independent KVs.
TEST(ContentionTest, SharedKvSlowerThanPrivateKvs) {
  auto run_with = [](bool shared) {
    sim::Scheduler sched;
    ClusterConfig cfg;
    cfg.server_nodes = 1;
    cfg.client_nodes = 1;
    cfg.payload_mode = PayloadMode::digest;
    Cluster cluster(sched, cfg);
    const int procs = 16;
    const int puts = 30;
    auto proc = [](Cluster& cl, int rank, bool shared_kv, int n_puts) -> sim::Task<void> {
      Client client(cl, cl.client_endpoint(0, static_cast<std::size_t>(rank)),
                    static_cast<std::uint64_t>(rank));
      ContHandle main = co_await client.main_cont_open();
      const std::uint64_t kv_id = shared_kv ? 0u : static_cast<std::uint64_t>(rank + 1);
      KvHandle kv = co_await client.kv_open(
          main, ObjectId::generate(9, kv_id, ObjectType::key_value, ObjectClass::SX));
      for (int i = 0; i < n_puts; ++i) {
        (co_await client.kv_put(kv, "k" + std::to_string(rank) + "." + std::to_string(i), "v"))
            .expect_ok("kv_put");
      }
    };
    for (int r = 0; r < procs; ++r) sched.spawn(proc(cluster, r, shared, puts));
    sched.run();
    return sched.now();
  };
  const sim::TimePoint shared_time = run_with(true);
  const sim::TimePoint private_time = run_with(false);
  // The exact ratio is a calibration outcome (Fig. 4); the invariant is that
  // shared-KV contention costs real time.
  EXPECT_GT(static_cast<double>(shared_time), static_cast<double>(private_time) * 1.25);
}

// Determinism: identical cluster + workload => identical simulated end time.
TEST(DeterminismTest, RepeatedRunsBitIdentical) {
  auto run_once = [] {
    sim::Scheduler sched;
    ClusterConfig cfg;
    cfg.server_nodes = 2;
    cfg.client_nodes = 2;
    cfg.payload_mode = PayloadMode::digest;
    cfg.seed = 42;
    Cluster cluster(sched, cfg);
    auto proc = [](Cluster& cl, std::size_t node, std::size_t rank) -> sim::Task<void> {
      Client client(cl, cl.client_endpoint(node, rank), node * 100 + rank);
      ContHandle main = co_await client.main_cont_open();
      for (std::size_t i = 0; i < 5; ++i) {
        const ObjectId oid =
            ObjectId::generate(static_cast<std::uint32_t>(node * 10 + rank), i, ObjectType::array,
                               ObjectClass::S1);
        auto arr = co_await client.array_create(main, oid, 1, 1_MiB);
        auto handle = arr.value();
        (co_await client.array_write(handle, 0, nullptr, 1_MiB)).expect_ok("write");
        co_await client.array_close(handle);
      }
    };
    for (std::size_t n = 0; n < 2; ++n) {
      for (std::size_t r = 0; r < 4; ++r) sched.spawn(proc(cluster, n, r));
    }
    sched.run();
    return sched.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nws::daos
