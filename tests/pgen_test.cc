// Tests for the product-generation serving tier: single-flight cache,
// admission fairness, discovery, and write/read contention determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "daos/cluster.h"
#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "ioserver/ioserver.h"
#include "pgen/admission.h"
#include "pgen/field_cache.h"
#include "pgen/serving.h"

namespace nws::pgen {
namespace {

using nws::operator""_KiB;
using nws::operator""_MiB;

// --- FieldCache units -------------------------------------------------------

struct CacheFixture {
  sim::Scheduler sched;
  FieldCache cache;
  std::uint64_t fetches = 0;

  explicit CacheFixture(CacheConfig cfg) : cache(sched, cfg) {}

  /// A fetcher that costs 1ms of simulated time and returns `size`.
  FieldCache::Fetcher fetcher(Bytes size) {
    return [this, size]() -> sim::Task<Result<Bytes>> {
      ++fetches;
      co_await sched.delay(sim::milliseconds(1.0));
      co_return Result<Bytes>(size);
    };
  }
};

sim::Task<void> get_expect(CacheFixture& fx, std::string key, Bytes size,
                           FieldCache::Source expected) {
  const FieldCache::Outcome outcome =
      co_await fx.cache.get_or_fetch(std::move(key), fx.fetcher(size));
  EXPECT_TRUE(outcome.status.is_ok());
  EXPECT_EQ(outcome.size, size);
  EXPECT_EQ(outcome.source, expected);
}

TEST(FieldCacheTest, SingleFlightCoalescesConcurrentReaders) {
  CacheFixture fx({});
  // Five concurrent requests for one key: one leads, four coalesce.
  fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::fetched));
  for (int i = 0; i < 4; ++i) {
    fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::coalesced));
  }
  fx.sched.run();
  EXPECT_EQ(fx.fetches, 1u);
  EXPECT_EQ(fx.cache.stats().misses, 1u);
  EXPECT_EQ(fx.cache.stats().coalesced, 4u);
  EXPECT_EQ(fx.cache.stats().hits, 0u);
  EXPECT_EQ(fx.cache.in_flight(), 0u);

  // The field is now resident: a later request is a hit, no new fetch.
  fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::hit));
  fx.sched.run();
  EXPECT_EQ(fx.fetches, 1u);
  EXPECT_EQ(fx.cache.stats().hits, 1u);
}

TEST(FieldCacheTest, LeaderFailureReachesCoalescedWaiters) {
  CacheFixture fx({});
  std::uint64_t failures = 0;
  auto failing = [&fx]() -> sim::Task<Result<Bytes>> {
    ++fx.fetches;
    co_await fx.sched.delay(sim::milliseconds(1.0));
    co_return Result<Bytes>(Status::error(Errc::io_error, "injected"));
  };
  auto get_fail = [&fx, &failures, &failing]() -> sim::Task<void> {
    const FieldCache::Outcome outcome = co_await fx.cache.get_or_fetch("k", failing);
    EXPECT_EQ(outcome.status.code(), Errc::io_error);
    ++failures;
  };
  fx.sched.spawn(get_fail());
  fx.sched.spawn(get_fail());
  fx.sched.run();
  EXPECT_EQ(fx.fetches, 1u);
  EXPECT_EQ(failures, 2u);
  // A failed fetch is not cached: the next request fetches again.
  EXPECT_FALSE(fx.cache.resident("k"));
  fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::fetched));
  fx.sched.run();
  EXPECT_EQ(fx.fetches, 2u);
}

TEST(FieldCacheTest, LruEvictsLeastRecentlyUsed) {
  CacheConfig cfg;
  cfg.policy = EvictionPolicy::lru;
  cfg.capacity_fields = 2;
  CacheFixture fx(cfg);
  fx.sched.spawn([](CacheFixture& f) -> sim::Task<void> {
    co_await f.cache.get_or_fetch("a", f.fetcher(1_MiB));
    co_await f.cache.get_or_fetch("b", f.fetcher(1_MiB));
    co_await f.cache.get_or_fetch("a", f.fetcher(1_MiB));  // touch: a is now MRU
    co_await f.cache.get_or_fetch("c", f.fetcher(1_MiB));  // evicts b, not a
  }(fx));
  fx.sched.run();
  EXPECT_TRUE(fx.cache.resident("a"));
  EXPECT_FALSE(fx.cache.resident("b"));
  EXPECT_TRUE(fx.cache.resident("c"));
  EXPECT_EQ(fx.cache.stats().evictions, 1u);
  EXPECT_EQ(fx.cache.stats().hits, 1u);
  EXPECT_EQ(fx.cache.stats().bytes_evicted, 1_MiB);
}

TEST(FieldCacheTest, SizeAwareEvictionRespectsByteBudget) {
  CacheConfig cfg;
  cfg.policy = EvictionPolicy::size_lru;
  cfg.capacity_bytes = 3_MiB;
  CacheFixture fx(cfg);
  fx.sched.spawn([](CacheFixture& f) -> sim::Task<void> {
    co_await f.cache.get_or_fetch("a", f.fetcher(2_MiB));
    co_await f.cache.get_or_fetch("b", f.fetcher(2_MiB));  // 4 MiB > budget: evicts a
    co_await f.cache.get_or_fetch("huge", f.fetcher(4_MiB));  // larger than budget: bypass
  }(fx));
  fx.sched.run();
  EXPECT_FALSE(fx.cache.resident("a"));
  EXPECT_TRUE(fx.cache.resident("b"));
  EXPECT_FALSE(fx.cache.resident("huge"));  // never admitted
  EXPECT_EQ(fx.cache.stats().resident_bytes, 2_MiB);
  EXPECT_LE(fx.cache.stats().peak_resident_bytes, cfg.capacity_bytes);
  EXPECT_EQ(fx.cache.stats().evictions, 1u);
}

TEST(FieldCacheTest, ZeroCapacityStillCoalesces) {
  CacheConfig cfg;
  cfg.capacity_fields = 0;  // residency off
  CacheFixture fx(cfg);
  fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::fetched));
  fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::coalesced));
  fx.sched.run();
  EXPECT_EQ(fx.fetches, 1u);
  EXPECT_EQ(fx.cache.resident_fields(), 0u);

  // Not resident, so the next request fetches again.
  fx.sched.spawn(get_expect(fx, "k", 1_MiB, FieldCache::Source::fetched));
  fx.sched.run();
  EXPECT_EQ(fx.fetches, 2u);
}

// --- AdmissionController units ---------------------------------------------

TEST(AdmissionTest, BudgetBoundsInFlightAndRoundRobinIsFair) {
  sim::Scheduler sched;
  AdmissionController admission(sched, AdmissionConfig{1}, 3);
  std::size_t peak_in_flight = 0;
  constexpr int kRounds = 5;
  auto worker = [&](std::size_t idx) -> sim::Task<void> {
    for (int round = 0; round < kRounds; ++round) {
      co_await admission.acquire(idx);
      peak_in_flight = std::max(peak_in_flight, admission.in_flight());
      co_await sched.delay(sim::milliseconds(1.0));
      admission.release();
    }
  };
  for (std::size_t idx = 0; idx < 3; ++idx) sched.spawn(worker(idx));
  sched.run();
  EXPECT_EQ(peak_in_flight, 1u);  // hard budget, even with direct handoff
  EXPECT_EQ(admission.in_flight(), 0u);
  EXPECT_EQ(admission.queued_now(), 0u);
  // Every consumer completed all rounds: no starvation under 3x overload.
  EXPECT_EQ(admission.admitted_per_consumer(),
            (std::vector<std::uint64_t>{kRounds, kRounds, kRounds}));
  EXPECT_GT(admission.stats().queued, 0u);
  EXPECT_EQ(admission.stats().peak_queued, 2u);
  EXPECT_FALSE(admission.stats().wait_seconds.empty());
}

TEST(AdmissionTest, ZeroBudgetMeansUnlimited) {
  sim::Scheduler sched;
  AdmissionController admission(sched, AdmissionConfig{0}, 4);
  auto worker = [&](std::size_t idx) -> sim::Task<void> {
    co_await admission.acquire(idx);
    co_await sched.delay(sim::milliseconds(1.0));
    admission.release();
  };
  for (std::size_t idx = 0; idx < 4; ++idx) sched.spawn(worker(idx));
  sched.run();
  EXPECT_EQ(admission.stats().admitted, 4u);
  EXPECT_EQ(admission.stats().queued, 0u);
}

// --- Serving-tier integration ----------------------------------------------

daos::ClusterConfig small_cluster(std::size_t client_nodes = 1) {
  daos::ClusterConfig cfg;
  cfg.server_nodes = 1;
  cfg.client_nodes = client_nodes;
  cfg.payload_mode = daos::PayloadMode::digest;
  return cfg;
}

ioserver::PipelineConfig small_pipeline() {
  ioserver::PipelineConfig cfg;
  cfg.model_processes = 8;
  cfg.io_servers = 2;
  cfg.steps = 2;
  cfg.fields_per_step = 4;
  cfg.field_size = 256_KiB;
  return cfg;
}

TEST(ServingTest, HotFieldIsReadFromDaosExactlyOnce) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster());
  ioserver::PipelineConfig write = small_pipeline();
  write.steps = 1;
  write.fields_per_step = 1;
  ServingConfig serve;
  serve.consumers = 4;
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.pipeline.failed) << result.pipeline.failure;
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  // Four consumers requested the one hot field; single-flight plus residency
  // mean exactly one DAOS array read happened.
  EXPECT_EQ(result.serving.fields_served, 4u);
  EXPECT_EQ(result.serving.read_log.operations(), 1u);
  EXPECT_EQ(result.serving.cache.misses, 1u);
  EXPECT_EQ(result.serving.cache.hits + result.serving.cache.coalesced, 3u);
  EXPECT_EQ(result.serving.bytes_served, 4u * write.field_size);
}

TEST(ServingTest, FleetServesEveryFieldToEveryConsumer) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster(2));
  const ioserver::PipelineConfig write = small_pipeline();
  ServingConfig serve;
  serve.consumers = 6;
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.pipeline.failed) << result.pipeline.failure;
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  const std::uint64_t total_fields =
      static_cast<std::uint64_t>(write.steps) * write.fields_per_step;
  EXPECT_EQ(result.serving.fields_served, serve.consumers * total_fields);
  ASSERT_EQ(result.serving.reads_per_consumer.size(), serve.consumers);
  for (const std::uint64_t reads : result.serving.reads_per_consumer) {
    EXPECT_EQ(reads, total_fields);
  }
  // Two client nodes, each with its own cache: at most one DAOS read per
  // field per node.
  EXPECT_LE(result.serving.read_log.operations(), 2 * total_fields);
  EXPECT_GT(result.serving.cache.hits + result.serving.cache.coalesced, 0u);
  EXPECT_GT(result.serving.notified_fields, 0u);
}

TEST(ServingTest, PollingOnlyDiscoveryServesEverything) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster());
  const ioserver::PipelineConfig write = small_pipeline();
  ServingConfig serve;
  serve.consumers = 3;
  serve.use_notifications = false;
  serve.poll_interval = sim::milliseconds(0.5);
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.pipeline.failed) << result.pipeline.failure;
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  const std::uint64_t total_fields =
      static_cast<std::uint64_t>(write.steps) * write.fields_per_step;
  EXPECT_EQ(result.serving.fields_served, serve.consumers * total_fields);
  EXPECT_GT(result.serving.polls, 0u);
  EXPECT_EQ(result.serving.notified_fields, 0u);
}

TEST(ServingTest, AdmissionBudgetIsFairAcrossConsumers) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster());
  ioserver::PipelineConfig write = small_pipeline();
  ServingConfig serve;
  serve.consumers = 8;
  serve.admission.max_in_flight = 1;
  serve.cache.capacity_fields = 0;  // every request goes to DAOS: overload
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  // Every DAOS read passed through admission (coalesced requests never
  // consume a slot — they wait on the in-flight fetch, not the budget).
  EXPECT_EQ(result.serving.admission.admitted, result.serving.cache.misses);
  // Zero-capacity cache still coalesces concurrent requests, so per-consumer
  // admission counts need not be exactly equal — but nobody may starve.
  std::uint64_t served_min = result.serving.reads_per_consumer[0];
  std::uint64_t served_max = served_min;
  for (const std::uint64_t reads : result.serving.reads_per_consumer) {
    served_min = std::min(served_min, reads);
    served_max = std::max(served_max, reads);
  }
  const std::uint64_t total_fields =
      static_cast<std::uint64_t>(write.steps) * write.fields_per_step;
  EXPECT_EQ(served_min, total_fields);
  EXPECT_EQ(served_max, total_fields);
}

TEST(ServingTest, ConsumersSurviveInjectedFaults) {
  daos::ClusterConfig cfg = small_cluster();
  cfg.fault_spec = fault::FaultSpec::default_chaos(7);
  sim::Scheduler sched;
  daos::Cluster cluster(sched, cfg);
  const ioserver::PipelineConfig write = small_pipeline();
  ServingConfig serve;
  serve.consumers = 4;
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.pipeline.failed) << result.pipeline.failure;
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  const std::uint64_t total_fields =
      static_cast<std::uint64_t>(write.steps) * write.fields_per_step;
  EXPECT_EQ(result.serving.fields_served, serve.consumers * total_fields);
  EXPECT_GT(result.pipeline.client_stats.op_retries + result.serving.client_stats.op_retries, 0u);
}

TEST(ServingTest, EmptyFleetFinishesImmediately) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster());
  const ioserver::PipelineConfig write = small_pipeline();
  ServingConfig serve;
  serve.consumers = 0;  // the bench's write-only baseline
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.pipeline.failed) << result.pipeline.failure;
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  EXPECT_EQ(result.serving.fields_served, 0u);
  EXPECT_EQ(result.pipeline.fields_stored,
            static_cast<std::uint64_t>(write.steps) * write.fields_per_step);
}

TEST(ServingTest, NoIndexWithoutNotificationsIsRejected) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster());
  ioserver::PipelineConfig write = small_pipeline();
  write.mode = fdb::Mode::no_index;
  ServingConfig serve;
  serve.field_io.mode = fdb::Mode::no_index;
  serve.use_notifications = false;
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  EXPECT_TRUE(result.serving.failed);
  EXPECT_FALSE(result.pipeline.failed) << result.pipeline.failure;  // still drained
}

TEST(ServingTest, NoIndexModeServesViaNotifications) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, small_cluster());
  ioserver::PipelineConfig write = small_pipeline();
  write.mode = fdb::Mode::no_index;
  ServingConfig serve;
  serve.consumers = 2;
  serve.field_io.mode = fdb::Mode::no_index;
  const ContentionResult result = run_write_read_contention(cluster, write, serve);
  ASSERT_FALSE(result.pipeline.failed) << result.pipeline.failure;
  ASSERT_FALSE(result.serving.failed) << result.serving.failure;
  const std::uint64_t total_fields =
      static_cast<std::uint64_t>(write.steps) * write.fields_per_step;
  EXPECT_EQ(result.serving.fields_served, serve.consumers * total_fields);
  EXPECT_EQ(result.serving.polls, 0u);  // no catalogue to poll in this mode
}

TEST(ServingTest, MetricsSnapshotCarriesServingCounters) {
  const bench::RunOutcome outcome =
      run_contention_once(small_cluster(), small_pipeline(), ServingConfig{}, 42);
  ASSERT_FALSE(outcome.failed) << outcome.failure;
  EXPECT_GT(outcome.write_bw, 0.0);
  EXPECT_GT(outcome.read_bw, 0.0);
  EXPECT_TRUE(outcome.metrics.has("pgen.fields_served"));
  EXPECT_TRUE(outcome.metrics.has("cache.hits"));
  EXPECT_TRUE(outcome.metrics.has("cache.coalesced"));
  EXPECT_TRUE(outcome.metrics.has("admission.admitted"));
  EXPECT_EQ(outcome.metrics.value("pgen.fields_served"),
            static_cast<double>(8u * small_pipeline().steps * small_pipeline().fields_per_step));
}

TEST(ServingTest, RepetitionsAreBitIdenticalAtAnyJobCount) {
  const auto run = [](std::uint64_t seed) {
    ioserver::PipelineConfig write = small_pipeline();
    ServingConfig serve;
    serve.consumers = 4;
    serve.admission.max_in_flight = 2;
    return run_contention_once(small_cluster(2), write, serve, seed);
  };
  const bench::RepetitionSummary serial = bench::repeat(4, 99, run, 1);
  const bench::RepetitionSummary pooled = bench::repeat(4, 99, run, 3);
  ASSERT_FALSE(serial.any_failed) << serial.failure;
  ASSERT_FALSE(pooled.any_failed) << pooled.failure;
  EXPECT_EQ(serial.write.samples(), pooled.write.samples());
  EXPECT_EQ(serial.read.samples(), pooled.read.samples());
  EXPECT_TRUE(serial.metrics == pooled.metrics);
}

}  // namespace
}  // namespace nws::pgen
