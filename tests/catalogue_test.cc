// Tests for the store catalogue.
#include <gtest/gtest.h>

#include "daos/client.h"
#include "daos/cluster.h"
#include "fault/fault_plan.h"
#include "fdb/catalogue.h"
#include "fdb/field_io.h"

namespace nws::fdb {
namespace {

using nws::operator""_KiB;
using nws::operator""_MiB;

struct Fixture {
  sim::Scheduler sched;
  std::unique_ptr<daos::Cluster> cluster;

  Fixture() {
    daos::ClusterConfig cfg;
    cfg.server_nodes = 1;
    cfg.client_nodes = 1;
    cfg.payload_mode = daos::PayloadMode::digest;
    cluster = std::make_unique<daos::Cluster>(sched, cfg);
  }

  template <typename Body>
  void run(Body body) {
    auto proc = [](daos::Cluster& cl, Body b) -> sim::Task<void> {
      daos::Client client(cl, cl.client_endpoint(0, 0), 0);
      co_await b(client);
    };
    sched.spawn(proc(*cluster, std::move(body)));
    sched.run();
  }
};

FieldKey key_for(const std::string& date, int step) {
  FieldKey key;
  key.set("class", "od").set("date", date).set("time", "0000");
  key.set("param", "t").set("step", std::to_string(step));
  return key;
}

class CatalogueModes : public ::testing::TestWithParam<Mode> {};

TEST_P(CatalogueModes, ListsForecastsAndFields) {
  const Mode mode = GetParam();
  Fixture fx;
  fx.run([mode](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    // Two forecasts, 3 and 2 fields.
    for (int step = 0; step < 3; ++step) {
      (co_await io.write(key_for("20260701", step), nullptr, 1_MiB)).expect_ok("write");
    }
    for (int step = 0; step < 2; ++step) {
      (co_await io.write(key_for("20260702", step), nullptr, 2_MiB)).expect_ok("write");
    }

    Catalogue catalogue(client, cfg);
    (co_await catalogue.init()).expect_ok("catalogue init");
    auto forecasts = co_await catalogue.list_forecasts();
    EXPECT_TRUE(forecasts.is_ok());
    EXPECT_EQ(forecasts.value().size(), 2u);
    Bytes total = 0;
    for (const ForecastEntry& f : forecasts.value()) {
      if (f.forecast_key.find("20260701") != std::string::npos) {
        EXPECT_EQ(f.field_count, 3u);
        EXPECT_EQ(f.total_bytes, 3_MiB);
      } else {
        EXPECT_EQ(f.field_count, 2u);
        EXPECT_EQ(f.total_bytes, 4_MiB);
      }
      total += f.total_bytes;
    }
    EXPECT_EQ((co_await catalogue.referenced_bytes()).value(), total);

    auto fields = co_await catalogue.list_fields(forecasts.value()[0].forecast_key);
    EXPECT_TRUE(fields.is_ok());
    for (const FieldEntry& field : fields.value()) {
      EXPECT_FALSE(field.field_key.empty());
      EXPECT_GT(field.size, 0u);
    }
  });
}

TEST_P(CatalogueModes, RewriteKeepsReferencedBytesStable) {
  // Re-writes orphan the old array: pool usage grows, but the catalogue's
  // referenced bytes stay constant (Section 4's no-delete design).
  const Mode mode = GetParam();
  Fixture fx;
  fx.run([mode, &fx](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    for (int i = 0; i < 3; ++i) {
      (co_await io.write(key_for("20260701", 0), nullptr, 1_MiB)).expect_ok("write");
    }
    Catalogue catalogue(client, cfg);
    (co_await catalogue.init()).expect_ok("catalogue init");
    EXPECT_EQ((co_await catalogue.referenced_bytes()).value(), 1_MiB);
    EXPECT_EQ(fx.cluster->pool_used(), 3_MiB);  // two orphaned generations
  });
}

INSTANTIATE_TEST_SUITE_P(IndexedModes, CatalogueModes,
                         ::testing::Values(Mode::full, Mode::no_containers),
                         [](const auto& mode_info) {
                           return mode_info.param == Mode::full ? "full" : "no_containers";
                         });

TEST(CatalogueTest, NoIndexModeUnsupported) {
  Fixture fx;
  fx.run([](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = Mode::no_index;
    Catalogue catalogue(client, cfg);
    EXPECT_EQ((co_await catalogue.init()).code(), Errc::unsupported);
  });
}

TEST(CatalogueTest, UnknownForecastFails) {
  Fixture fx;
  fx.run([](daos::Client& client) -> sim::Task<void> {
    Catalogue catalogue(client, FieldIoConfig{});
    (co_await catalogue.init()).expect_ok("init");
    const auto missing = co_await catalogue.list_fields("'class': 'od', 'date': '19990101'");
    EXPECT_EQ(missing.status().code(), Errc::not_found);
    EXPECT_TRUE((co_await catalogue.list_forecasts()).value().empty());
  });
}

TEST(CatalogueChaosTest, ListingAndPurgeSurviveInjectedFaults) {
  // Catalogue operations run under the same retry policy as FieldIo, so
  // administrative sweeps complete despite dropped RPCs, transient errors
  // and target outage/slowdown windows (all seeded, hence reproducible).
  sim::Scheduler sched;
  daos::ClusterConfig cfg;
  cfg.server_nodes = 1;
  cfg.client_nodes = 1;
  cfg.payload_mode = daos::PayloadMode::digest;
  cfg.fault_spec = fault::FaultSpec::default_chaos(11);
  cfg.fault_spec.rpc_drop_rate = 0.05;
  cfg.fault_spec.transient_error_rate = 0.1;
  daos::Cluster cluster(sched, cfg);
  sched.spawn([](daos::Cluster& cl) -> sim::Task<void> {
    daos::Client client(cl, cl.client_endpoint(0, 0), 0);
    const FieldIoConfig io_cfg;  // full mode: purge supported
    FieldIo io(client, io_cfg, 0);
    (co_await io.init()).expect_ok("init");
    // Forecast 1: three fields, each written twice (one orphan per field).
    for (int gen = 0; gen < 2; ++gen) {
      for (int step = 0; step < 3; ++step) {
        (co_await io.write(key_for("20260701", step), nullptr, 1_MiB)).expect_ok("write");
      }
    }
    // Forecast 2: two fields, no re-writes.
    for (int step = 0; step < 2; ++step) {
      (co_await io.write(key_for("20260702", step), nullptr, 2_MiB)).expect_ok("write");
    }

    Catalogue catalogue(client, io_cfg);
    (co_await catalogue.init()).expect_ok("catalogue init");
    const auto forecasts = co_await catalogue.list_forecasts();
    EXPECT_TRUE(forecasts.is_ok()) << forecasts.status().to_string();
    if (!forecasts.is_ok()) co_return;
    EXPECT_EQ(forecasts.value().size(), 2u);
    std::string rewritten;
    for (const ForecastEntry& f : forecasts.value()) {
      if (f.forecast_key.find("20260701") != std::string::npos) {
        rewritten = f.forecast_key;
        EXPECT_EQ(f.field_count, 3u);
        EXPECT_EQ(f.total_bytes, 3_MiB);  // live generations only, sizes intact
      } else {
        EXPECT_EQ(f.field_count, 2u);
        EXPECT_EQ(f.total_bytes, 4_MiB);
      }
    }
    EXPECT_FALSE(rewritten.empty());
    if (rewritten.empty()) co_return;
    const auto fields = co_await catalogue.list_fields(rewritten);
    EXPECT_TRUE(fields.is_ok()) << fields.status().to_string();
    if (fields.is_ok()) {
      EXPECT_EQ(fields.value().size(), 3u);
    }

    // Purge reclaims exactly the orphaned generations, faults notwithstanding.
    const auto purged = co_await catalogue.purge(rewritten);
    EXPECT_TRUE(purged.is_ok()) << purged.status().to_string();
    if (!purged.is_ok()) co_return;
    EXPECT_EQ(purged.value().arrays_destroyed, 3u);
    EXPECT_EQ(purged.value().bytes_reclaimed, 3_MiB);
    // Idempotent: a second purge finds nothing left to destroy.
    const auto again = co_await catalogue.purge(rewritten);
    EXPECT_TRUE(again.is_ok()) << again.status().to_string();
    if (again.is_ok()) {
      EXPECT_EQ(again.value().arrays_destroyed, 0u);
    }

    // The chaos actually bit: operations were re-driven by the retry layer.
    EXPECT_GT(client.stats().op_retries, 0u);
    EXPECT_GT(catalogue.retries(), 0u);
  }(cluster));
  sched.run();
}

}  // namespace
}  // namespace nws::fdb
