// Tests for the store catalogue.
#include <gtest/gtest.h>

#include "daos/client.h"
#include "daos/cluster.h"
#include "fdb/catalogue.h"
#include "fdb/field_io.h"

namespace nws::fdb {
namespace {

using nws::operator""_KiB;
using nws::operator""_MiB;

struct Fixture {
  sim::Scheduler sched;
  std::unique_ptr<daos::Cluster> cluster;

  Fixture() {
    daos::ClusterConfig cfg;
    cfg.server_nodes = 1;
    cfg.client_nodes = 1;
    cfg.payload_mode = daos::PayloadMode::digest;
    cluster = std::make_unique<daos::Cluster>(sched, cfg);
  }

  template <typename Body>
  void run(Body body) {
    auto proc = [](daos::Cluster& cl, Body b) -> sim::Task<void> {
      daos::Client client(cl, cl.client_endpoint(0, 0), 0);
      co_await b(client);
    };
    sched.spawn(proc(*cluster, std::move(body)));
    sched.run();
  }
};

FieldKey key_for(const std::string& date, int step) {
  FieldKey key;
  key.set("class", "od").set("date", date).set("time", "0000");
  key.set("param", "t").set("step", std::to_string(step));
  return key;
}

class CatalogueModes : public ::testing::TestWithParam<Mode> {};

TEST_P(CatalogueModes, ListsForecastsAndFields) {
  const Mode mode = GetParam();
  Fixture fx;
  fx.run([mode](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    // Two forecasts, 3 and 2 fields.
    for (int step = 0; step < 3; ++step) {
      (co_await io.write(key_for("20260701", step), nullptr, 1_MiB)).expect_ok("write");
    }
    for (int step = 0; step < 2; ++step) {
      (co_await io.write(key_for("20260702", step), nullptr, 2_MiB)).expect_ok("write");
    }

    Catalogue catalogue(client, cfg);
    (co_await catalogue.init()).expect_ok("catalogue init");
    auto forecasts = co_await catalogue.list_forecasts();
    EXPECT_TRUE(forecasts.is_ok());
    EXPECT_EQ(forecasts.value().size(), 2u);
    Bytes total = 0;
    for (const ForecastEntry& f : forecasts.value()) {
      if (f.forecast_key.find("20260701") != std::string::npos) {
        EXPECT_EQ(f.field_count, 3u);
        EXPECT_EQ(f.total_bytes, 3_MiB);
      } else {
        EXPECT_EQ(f.field_count, 2u);
        EXPECT_EQ(f.total_bytes, 4_MiB);
      }
      total += f.total_bytes;
    }
    EXPECT_EQ((co_await catalogue.referenced_bytes()).value(), total);

    auto fields = co_await catalogue.list_fields(forecasts.value()[0].forecast_key);
    EXPECT_TRUE(fields.is_ok());
    for (const FieldEntry& field : fields.value()) {
      EXPECT_FALSE(field.field_key.empty());
      EXPECT_GT(field.size, 0u);
    }
  });
}

TEST_P(CatalogueModes, RewriteKeepsReferencedBytesStable) {
  // Re-writes orphan the old array: pool usage grows, but the catalogue's
  // referenced bytes stay constant (Section 4's no-delete design).
  const Mode mode = GetParam();
  Fixture fx;
  fx.run([mode, &fx](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    for (int i = 0; i < 3; ++i) {
      (co_await io.write(key_for("20260701", 0), nullptr, 1_MiB)).expect_ok("write");
    }
    Catalogue catalogue(client, cfg);
    (co_await catalogue.init()).expect_ok("catalogue init");
    EXPECT_EQ((co_await catalogue.referenced_bytes()).value(), 1_MiB);
    EXPECT_EQ(fx.cluster->pool_used(), 3_MiB);  // two orphaned generations
  });
}

INSTANTIATE_TEST_SUITE_P(IndexedModes, CatalogueModes,
                         ::testing::Values(Mode::full, Mode::no_containers),
                         [](const auto& info) {
                           return info.param == Mode::full ? "full" : "no_containers";
                         });

TEST(CatalogueTest, NoIndexModeUnsupported) {
  Fixture fx;
  fx.run([](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = Mode::no_index;
    Catalogue catalogue(client, cfg);
    EXPECT_EQ((co_await catalogue.init()).code(), Errc::unsupported);
  });
}

TEST(CatalogueTest, UnknownForecastFails) {
  Fixture fx;
  fx.run([](daos::Client& client) -> sim::Task<void> {
    Catalogue catalogue(client, FieldIoConfig{});
    (co_await catalogue.init()).expect_ok("init");
    const auto missing = co_await catalogue.list_fields("'class': 'od', 'date': '19990101'");
    EXPECT_EQ(missing.status().code(), Errc::not_found);
    EXPECT_TRUE((co_await catalogue.list_forecasts()).value().empty());
  });
}

}  // namespace
}  // namespace nws::fdb
