// Unit, integration and property tests for the field I/O layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "daos/client.h"
#include "daos/cluster.h"
#include "fdb/field_io.h"
#include "fdb/field_key.h"
#include "fdb/retry.h"

namespace nws::fdb {
namespace {

using nws::operator""_KiB;
using nws::operator""_MiB;

TEST(FieldKeyTest, CanonicalRenderingMatchesPaperExample) {
  FieldKey key;
  key.set("date", "20201224").set("class", "od");
  // Paper Section 4: the most-significant part reads
  // "'class': 'od', 'date': '20201224'" (schema order: class before date).
  EXPECT_EQ(key.most_significant(), "'class': 'od', 'date': '20201224'");
  EXPECT_EQ(key.least_significant(), "");
}

TEST(FieldKeyTest, SplitsForecastAndFieldParts) {
  FieldKey key;
  key.set("class", "od").set("date", "20201224").set("time", "0000");
  key.set("param", "t").set("level", "850").set("step", "24");
  EXPECT_EQ(key.most_significant(), "'class': 'od', 'date': '20201224', 'time': '0000'");
  EXPECT_EQ(key.least_significant(), "'level': '850', 'param': 't', 'step': '24'");
  EXPECT_EQ(key.canonical(), key.most_significant() + ", " + key.least_significant());
}

TEST(FieldKeyTest, GetSetOverwrite) {
  FieldKey key;
  key.set("param", "t");
  EXPECT_TRUE(key.has("param"));
  EXPECT_EQ(key.get("param").value(), "t");
  key.set("param", "z");
  EXPECT_EQ(key.get("param").value(), "z");
  EXPECT_EQ(key.get("level").status().code(), Errc::not_found);
  EXPECT_EQ(key.size(), 1u);
}

TEST(FieldKeyTest, ParseRoundTrip) {
  const auto parsed = FieldKey::parse("class=od,date=20201224,param=t,level=850");
  EXPECT_TRUE(parsed.is_ok());
  const FieldKey& key = parsed.value();
  EXPECT_EQ(key.get("class").value(), "od");
  EXPECT_EQ(key.get("level").value(), "850");
  EXPECT_EQ(key.size(), 4u);
}

TEST(FieldKeyTest, ParseRejectsMalformed) {
  EXPECT_EQ(FieldKey::parse("").status().code(), Errc::invalid);
  EXPECT_EQ(FieldKey::parse("novalue").status().code(), Errc::invalid);
  EXPECT_EQ(FieldKey::parse("=x").status().code(), Errc::invalid);
  EXPECT_EQ(FieldKey::parse("k=").status().code(), Errc::invalid);
}

TEST(ModeTest, Names) {
  EXPECT_STREQ(mode_name(Mode::full), "full");
  EXPECT_STREQ(mode_name(Mode::no_containers), "no containers");
  EXPECT_EQ(mode_by_name("no-index"), Mode::no_index);
  EXPECT_THROW(mode_by_name("bogus"), std::invalid_argument);
}

TEST(OidSerialisationTest, RoundTrip) {
  const daos::ObjectId oid =
      daos::ObjectId::generate(0xdeadbeefu, 0x0123456789abcdefull, daos::ObjectType::array,
                               daos::ObjectClass::S2);
  const auto parsed = oid_from_string(oid_to_string(oid));
  EXPECT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), oid);
  EXPECT_EQ(oid_from_string("garbage").status().code(), Errc::invalid);
}

// ---- integration fixtures ---------------------------------------------------

struct FieldIoFixture {
  sim::Scheduler sched;
  std::unique_ptr<daos::Cluster> cluster;

  explicit FieldIoFixture(daos::PayloadMode payload = daos::PayloadMode::full,
                          std::size_t servers = 1) {
    daos::ClusterConfig cfg;
    cfg.server_nodes = servers;
    cfg.client_nodes = 1;
    cfg.payload_mode = payload;
    cluster = std::make_unique<daos::Cluster>(sched, cfg);
  }

  template <typename Body>
  void run(Body body) {
    auto proc = [](daos::Cluster& cl, Body b) -> sim::Task<void> {
      daos::Client client(cl, cl.client_endpoint(0, 0), 0);
      co_await b(client);
    };
    sched.spawn(proc(*cluster, std::move(body)));
    sched.run();
  }
};

FieldKey example_key(int step = 24) {
  FieldKey key;
  key.set("class", "od").set("date", "20201224").set("time", "0000");
  key.set("param", "t").set("level", "850").set("step", std::to_string(step));
  return key;
}

class FieldIoModes : public ::testing::TestWithParam<Mode> {};

TEST_P(FieldIoModes, WriteReadRoundTrip) {
  const Mode mode = GetParam();
  FieldIoFixture fx;
  fx.run([mode](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, /*rank=*/0);
    (co_await io.init()).expect_ok("init");

    std::vector<std::uint8_t> field(1_MiB);
    for (std::size_t i = 0; i < field.size(); ++i) field[i] = static_cast<std::uint8_t>(i % 253);
    (co_await io.write(example_key(), field.data(), field.size())).expect_ok("write");

    std::vector<std::uint8_t> out(field.size());
    const auto n = co_await io.read(example_key(), out.data(), out.size());
    EXPECT_EQ(n.value(), field.size());
    EXPECT_EQ(out, field);

    EXPECT_EQ(io.stats().fields_written, 1u);
    EXPECT_EQ(io.stats().fields_read, 1u);
    EXPECT_EQ(io.stats().bytes_written, field.size());
  });
}

TEST_P(FieldIoModes, MissingFieldFails) {
  const Mode mode = GetParam();
  FieldIoFixture fx;
  fx.run([mode](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    const auto missing = co_await io.read(example_key(), nullptr, 1_MiB);
    EXPECT_EQ(missing.status().code(), Errc::not_found);
  });
}

TEST_P(FieldIoModes, MultipleFieldsPerForecast) {
  const Mode mode = GetParam();
  FieldIoFixture fx(daos::PayloadMode::digest);
  fx.run([mode](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    for (int step = 0; step < 20; ++step) {
      (co_await io.write(example_key(step), nullptr, 1_MiB)).expect_ok("write");
    }
    for (int step = 0; step < 20; ++step) {
      const auto n = co_await io.read(example_key(step), nullptr, 1_MiB);
      EXPECT_EQ(n.value(), 1_MiB) << "step " << step;
    }
  });
}

TEST_P(FieldIoModes, RewriteReturnsLatestData) {
  const Mode mode = GetParam();
  FieldIoFixture fx;
  fx.run([mode](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = mode;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");

    std::vector<std::uint8_t> v1(256_KiB, 0x11);
    std::vector<std::uint8_t> v2(256_KiB, 0x22);
    (co_await io.write(example_key(), v1.data(), v1.size())).expect_ok("write v1");
    (co_await io.write(example_key(), v2.data(), v2.size())).expect_ok("write v2");

    std::vector<std::uint8_t> out(v2.size());
    const auto n = co_await io.read(example_key(), out.data(), out.size());
    EXPECT_EQ(n.value(), v2.size());
    EXPECT_EQ(out, v2);
  });
}

INSTANTIATE_TEST_SUITE_P(AllModes, FieldIoModes,
                         ::testing::Values(Mode::full, Mode::no_containers, Mode::no_index),
                         [](const auto& mode_info) {
                           switch (mode_info.param) {
                             case Mode::full: return "full";
                             case Mode::no_containers: return "no_containers";
                             case Mode::no_index: return "no_index";
                           }
                           return "unknown";
                         });

TEST(FieldIoSemantics, RewriteDereferencesOldArrayInIndexedModes) {
  // Section 4: "a new Array object is created and indexed, and the
  // previously existing one is de-referenced.  No read-modify-write is
  // performed upon re-write, and the functions do not delete de-referenced
  // objects by design."
  FieldIoFixture fx(daos::PayloadMode::digest);
  fx.run([&fx](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = Mode::no_containers;  // arrays land in the main container
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");

    (co_await io.write(example_key(), nullptr, 1_MiB)).expect_ok("write v1");
    const std::size_t arrays_after_first = fx.cluster->main_container().array_count();
    const Bytes used_after_first = fx.cluster->pool_used();

    (co_await io.write(example_key(), nullptr, 1_MiB)).expect_ok("write v2");
    // A new array exists; the old one was not deleted...
    EXPECT_EQ(fx.cluster->main_container().array_count(), arrays_after_first + 1);
    // ...and its capacity was not reclaimed.
    EXPECT_EQ(fx.cluster->pool_used(), used_after_first + 1_MiB);
  });
}

TEST(FieldIoSemantics, NoIndexRewriteOverwritesSameArray) {
  // In "no index" mode the md5-derived object id is stable, so a re-write
  // hits the same Array (paper 5.3: contention moves to the Array level).
  FieldIoFixture fx(daos::PayloadMode::digest);
  fx.run([&fx](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = Mode::no_index;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");

    (co_await io.write(example_key(), nullptr, 1_MiB)).expect_ok("write v1");
    const std::size_t arrays_after_first = fx.cluster->main_container().array_count();
    (co_await io.write(example_key(), nullptr, 1_MiB)).expect_ok("write v2");
    EXPECT_EQ(fx.cluster->main_container().array_count(), arrays_after_first);
    EXPECT_EQ(fx.cluster->pool_used(), 1_MiB);  // overwrite, no growth
  });
}

TEST(FieldIoSemantics, FullModeCreatesForecastContainers) {
  FieldIoFixture fx(daos::PayloadMode::digest);
  fx.run([&fx](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = Mode::full;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    EXPECT_EQ(fx.cluster->container_count(), 1u);  // main only
    (co_await io.write(example_key(), nullptr, 1_MiB)).expect_ok("write");
    // index + store containers for the forecast.
    EXPECT_EQ(fx.cluster->container_count(), 3u);
    // A second forecast creates another pair.
    FieldKey other = example_key();
    other.set("date", "20201225");
    (co_await io.write(other, nullptr, 1_MiB)).expect_ok("write other");
    EXPECT_EQ(fx.cluster->container_count(), 5u);
  });
}

TEST(FieldIoSemantics, NoContainersModeKeepsEverythingInMain) {
  FieldIoFixture fx(daos::PayloadMode::digest);
  fx.run([&fx](daos::Client& client) -> sim::Task<void> {
    FieldIoConfig cfg;
    cfg.mode = Mode::no_containers;
    FieldIo io(client, cfg, 0);
    (co_await io.init()).expect_ok("init");
    (co_await io.write(example_key(), nullptr, 1_MiB)).expect_ok("write");
    EXPECT_EQ(fx.cluster->container_count(), 1u);
    EXPECT_GT(fx.cluster->main_container().object_count(), 0u);
  });
}

TEST(FieldIoSemantics, ZeroLengthFieldRejected) {
  FieldIoFixture fx(daos::PayloadMode::digest);
  fx.run([](daos::Client& client) -> sim::Task<void> {
    FieldIo io(client, FieldIoConfig{}, 0);
    (co_await io.init()).expect_ok("init");
    EXPECT_EQ((co_await io.write(example_key(), nullptr, 0)).code(), Errc::invalid);
  });
}

TEST(FieldIoConcurrency, ConcurrentWritersToSameForecastCollideGracefully) {
  // Several processes writing fields of the *same* forecast must all
  // succeed: container creation races resolve via already_exists on the
  // md5-derived uuids (Section 4).
  FieldIoFixture fx(daos::PayloadMode::digest);
  const int procs = 8;
  int successes = 0;
  auto writer = [](daos::Cluster& cl, int rank, int* ok) -> sim::Task<void> {
    daos::Client client(cl, cl.client_endpoint(0, static_cast<std::size_t>(rank)),
                        static_cast<std::uint64_t>(rank));
    FieldIoConfig cfg;
    cfg.mode = Mode::full;
    FieldIo io(client, cfg, static_cast<std::uint32_t>(rank));
    (co_await io.init()).expect_ok("init");
    FieldKey key = example_key(rank);  // same forecast, distinct fields
    const Status st = co_await io.write(key, nullptr, 1_MiB);
    if (st.is_ok()) ++*ok;
  };
  for (int r = 0; r < procs; ++r) fx.sched.spawn(writer(*fx.cluster, r, &successes));
  fx.sched.run();
  EXPECT_EQ(successes, procs);
  // Exactly one pair of forecast containers despite the race.
  EXPECT_EQ(fx.cluster->container_count(), 3u);
}

TEST(FieldIoConcurrency, ReaderSeesWriterResultsAcrossProcesses) {
  FieldIoFixture fx(daos::PayloadMode::full);
  auto writer = [](daos::Cluster& cl) -> sim::Task<void> {
    daos::Client client(cl, cl.client_endpoint(0, 0), 0);
    FieldIo io(client, FieldIoConfig{}, 0);
    (co_await io.init()).expect_ok("init");
    std::vector<std::uint8_t> field(128_KiB, 0x7e);
    (co_await io.write(example_key(), field.data(), field.size())).expect_ok("write");
  };
  auto reader = [](daos::Cluster& cl) -> sim::Task<void> {
    daos::Client client(cl, cl.client_endpoint(0, 1), 1);
    FieldIo io(client, FieldIoConfig{}, 1);
    (co_await io.init()).expect_ok("init");
    // Poll until the writer's field appears (processes are unsynchronised).
    std::vector<std::uint8_t> out(128_KiB);
    for (int attempt = 0; attempt < 100; ++attempt) {
      const auto n = co_await io.read(example_key(), out.data(), out.size());
      if (n.is_ok()) {
        EXPECT_EQ(n.value(), 128_KiB);
        EXPECT_EQ(out[0], 0x7e);
        co_return;
      }
      co_await cl.scheduler().delay(sim::milliseconds(10));
    }
    ADD_FAILURE() << "field never became visible to the reader";
  };
  fx.sched.spawn(writer(*fx.cluster));
  fx.sched.spawn(reader(*fx.cluster));
  fx.sched.run();
}

TEST(FieldIoFaults, ContainerIssueSurfacesInFullMode) {
  // Fig. 5 emulation: full-mode runs fail beyond 8 server nodes when the
  // container issue is enabled; no-containers mode is unaffected.
  for (const Mode mode : {Mode::full, Mode::no_containers}) {
    sim::Scheduler sched;
    daos::ClusterConfig cfg;
    cfg.server_nodes = 10;
    cfg.client_nodes = 2;
    cfg.payload_mode = daos::PayloadMode::digest;
    cfg.faults.container_create_issue = true;
    cfg.faults.container_issue_threshold = 0;  // fail immediately at this scale
    daos::Cluster cluster(sched, cfg);
    Status result = Status::ok();
    auto proc = [](daos::Cluster& cl, Mode m, Status* out) -> sim::Task<void> {
      daos::Client client(cl, cl.client_endpoint(0, 0), 0);
      FieldIoConfig fcfg;
      fcfg.mode = m;
      FieldIo io(client, fcfg, 0);
      (co_await io.init()).expect_ok("init");
      *out = co_await io.write(example_key(), nullptr, 1_MiB);
    };
    sched.spawn(proc(cluster, mode, &result));
    sched.run();
    if (mode == Mode::full) {
      EXPECT_EQ(result.code(), Errc::unavailable) << "full mode should hit the container issue";
    } else {
      EXPECT_TRUE(result.is_ok()) << "no-containers mode does not create containers";
    }
  }
}

TEST(RetrierTest, BackoffNeverExceedsPolicyCap) {
  // Regression: the cap used to be applied before jitter, so a maxed-out
  // backoff jittered up to 1.5x past max_backoff.  The cap now bounds the
  // observable sleep.
  sim::Scheduler sched;
  daos::Cluster cluster(sched, daos::ClusterConfig{});
  daos::Client client(cluster, cluster.client_endpoint(0, 0), 0);
  const RetryPolicy policy;  // 20 ms cap, 0.5 jitter
  Retrier retrier(client, policy, 1234);
  const auto cap = policy.max_backoff;
  sim::Duration longest = 0;
  auto body = [&]() -> sim::Task<void> {
    for (int i = 0; i < 64; ++i) {
      // Attempt 12's raw exponential (~2 s) is far past the 20 ms cap, so a
      // jitter applied after capping would overshoot on most draws.
      const sim::TimePoint before = sched.now();
      co_await retrier.backoff(12);
      const sim::Duration slept = sched.now() - before;
      EXPECT_LE(slept, cap);
      longest = std::max(longest, slept);
    }
  };
  sched.spawn(body());
  sched.run();
  EXPECT_EQ(longest, cap);  // the cap is reached, not just approached
}

}  // namespace
}  // namespace nws::fdb
