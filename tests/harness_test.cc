// Tests for the metrics engine, the IOR clone, the field I/O benchmark
// patterns and the experiment runner.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "harness/experiment.h"
#include "harness/field_bench.h"
#include "obs/io_log.h"
#include "harness/run_pool.h"
#include "ior/ior.h"
#include "mpibench/mpibench.h"
#include "obs/trace.h"
#include "sim/sync.h"

namespace nws::bench {
namespace {

using nws::operator""_MiB;

TEST(IoLogTest, GlobalTimingBandwidthMatchesEq2) {
  IoLog log;
  // Two processes, unsynchronised: 100 MiB each over a 2 s global window.
  log.record(0, 0, 0, sim::seconds(0.0), sim::seconds(1.5), 100_MiB);
  log.record(0, 1, 0, sim::seconds(0.5), sim::seconds(2.0), 100_MiB);
  EXPECT_EQ(log.operations(), 2u);
  EXPECT_EQ(log.total_bytes(), 200_MiB);
  EXPECT_DOUBLE_EQ(log.global_timing_bandwidth(), static_cast<double>(200_MiB) / 2.0);
  EXPECT_EQ(log.total_wall_clock(), sim::seconds(2.0));
}

TEST(IoLogTest, SynchronousBandwidthMatchesEq1) {
  IoLog log;
  // Iteration 0: both procs 1 MiB within [0, 1] -> 2 MiB/s.
  log.record(0, 0, 0, sim::seconds(0.0), sim::seconds(1.0), 1_MiB);
  log.record(0, 1, 0, sim::seconds(0.2), sim::seconds(1.0), 1_MiB);
  // Iteration 1: both within [2, 6] -> 0.5 MiB/s.
  log.record(0, 0, 1, sim::seconds(2.0), sim::seconds(6.0), 1_MiB);
  log.record(0, 1, 1, sim::seconds(2.0), sim::seconds(5.0), 1_MiB);
  // Mean of per-iteration bandwidths: (2 + 0.5) / 2 = 1.25 MiB/s.
  EXPECT_DOUBLE_EQ(log.synchronous_bandwidth(), 1.25 * static_cast<double>(1_MiB));
}

TEST(IoLogTest, GlobalLowerOrEqualSyncOnGappedWorkload) {
  // A pause between iterations hurts global timing bandwidth but not the
  // synchronous metric — the paper's motivation for reporting both.
  IoLog log;
  log.record(0, 0, 0, sim::seconds(0.0), sim::seconds(1.0), 10_MiB);
  log.record(0, 0, 1, sim::seconds(9.0), sim::seconds(10.0), 10_MiB);
  EXPECT_DOUBLE_EQ(log.synchronous_bandwidth(), static_cast<double>(10_MiB));
  EXPECT_DOUBLE_EQ(log.global_timing_bandwidth(), static_cast<double>(20_MiB) / 10.0);
  EXPECT_LT(log.global_timing_bandwidth(), log.synchronous_bandwidth());
}

TEST(IoLogTest, EmptyLogThrows) {
  IoLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_THROW((void)log.synchronous_bandwidth(), std::logic_error);
  EXPECT_THROW((void)log.global_timing_bandwidth(), std::logic_error);
}

TEST(IoLogTest, OpLatencyDistribution) {
  IoLog log;
  log.record(0, 0, 0, sim::seconds(0.0), sim::seconds(1.0), 1_MiB);
  log.record(0, 1, 0, sim::seconds(0.0), sim::seconds(2.0), 1_MiB);
  log.record(0, 2, 0, sim::seconds(0.0), sim::seconds(4.0), 1_MiB);
  EXPECT_EQ(log.op_latencies().count(), 3u);
  EXPECT_DOUBLE_EQ(log.op_latencies().min(), 1.0);
  EXPECT_DOUBLE_EQ(log.op_latencies().max(), 4.0);
  EXPECT_DOUBLE_EQ(log.op_latencies().median(), 2.0);
}

TEST(IoLogTest, ZeroDurationIterationsSkippedInEq1) {
  // Regression: an iteration whose ops all start and end on the same tick
  // (instant transfers, cache-hit models) used to contribute a 0/0 division
  // to the Eq. 1 mean.  Such iterations are now skipped, and a log with no
  // timed iteration reports zero bandwidth instead of NaN.
  IoLog log;
  log.record(0, 0, 0, sim::seconds(1.0), sim::seconds(1.0), 1_MiB);
  EXPECT_DOUBLE_EQ(log.synchronous_bandwidth(), 0.0);
  // A timed iteration alongside the degenerate one: only it counts.
  log.record(0, 0, 1, sim::seconds(2.0), sim::seconds(3.0), 2_MiB);
  EXPECT_DOUBLE_EQ(log.synchronous_bandwidth(), static_cast<double>(2_MiB));
}

TEST(IoLogTest, RejectsBackwardsInterval) {
  IoLog log;
  EXPECT_THROW(log.record(0, 0, 0, sim::seconds(2.0), sim::seconds(1.0), 1_MiB),
               std::invalid_argument);
}

TEST(IoLogTest, DetailBufferBounded) {
  IoLog log(2);
  for (int i = 0; i < 5; ++i) {
    log.record(0, 0, static_cast<std::uint32_t>(i), sim::seconds(i), sim::seconds(i + 1), 1_MiB);
  }
  EXPECT_EQ(log.detail().size(), 2u);
  EXPECT_EQ(log.operations(), 5u);
}

TEST(EventKindTest, NamesMatchPaperList) {
  EXPECT_STREQ(event_kind_name(EventKind::io_start), "I/O start");
  EXPECT_STREQ(event_kind_name(EventKind::close_end), "object close end");
}

TEST(IorTest, SmallRunProducesConsistentLogs) {
  sim::Scheduler sched;
  daos::ClusterConfig cfg = testbed_config(1, 1);
  daos::Cluster cluster(sched, cfg);
  ior::IorParams params;
  params.segments = 10;
  params.processes_per_node = 4;
  const ior::IorResult result = ior::run_ior(cluster, params);
  ASSERT_FALSE(result.failed) << result.failure;
  EXPECT_EQ(result.write_log.operations(), 4u);
  EXPECT_EQ(result.read_log.operations(), 4u);
  EXPECT_EQ(result.write_log.total_bytes(), 4u * 10_MiB);
  // Reads must start strictly after the write phase completed.
  EXPECT_GE(result.read_log.first_start(), result.write_log.last_end());
  EXPECT_GT(result.write_log.synchronous_bandwidth(), 0.0);
}

TEST(IorTest, ReadFasterThanWrite) {
  // First-generation Optane reads ~3x faster than writes; the paper's read
  // bandwidths consistently exceed write bandwidths.
  const RunOutcome out = run_ior_once(testbed_config(1, 2), ior::IorParams{}, 7);
  ASSERT_FALSE(out.failed);
  EXPECT_GT(out.read_bw, out.write_bw);
}

TEST(IorTest, MultipleIterationsLogged) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, testbed_config(1, 1));
  ior::IorParams params;
  params.segments = 5;
  params.iterations = 3;
  params.processes_per_node = 2;
  const ior::IorResult result = ior::run_ior(cluster, params);
  ASSERT_FALSE(result.failed);
  EXPECT_EQ(result.write_log.operations(), 6u);  // 2 procs x 3 iterations
}

TEST(FieldBenchTest, KeysEncodeContention) {
  FieldBenchParams low;
  low.shared_forecast_index = false;
  FieldBenchParams high;
  high.shared_forecast_index = true;
  // Low contention: distinct forecasts per process.
  EXPECT_NE(bench_field_key(low, 0, 0, false).most_significant(),
            bench_field_key(low, 1, 0, false).most_significant());
  // High contention: one shared forecast.
  EXPECT_EQ(bench_field_key(high, 0, 0, false).most_significant(),
            bench_field_key(high, 1, 0, false).most_significant());
  // Distinct fields per process and op either way.
  EXPECT_NE(bench_field_key(high, 0, 0, false).canonical(),
            bench_field_key(high, 1, 0, false).canonical());
  EXPECT_NE(bench_field_key(high, 0, 0, false).canonical(),
            bench_field_key(high, 0, 1, false).canonical());
  // Designated keys are stable across ops (pattern B re-writes).
  EXPECT_EQ(bench_field_key(high, 3, 0, true).canonical(),
            bench_field_key(high, 3, 9, true).canonical());
}

class FieldPatternModes : public ::testing::TestWithParam<fdb::Mode> {};

TEST_P(FieldPatternModes, PatternACompletesAndBalances) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, testbed_config(1, 1));
  FieldBenchParams params;
  params.mode = GetParam();
  params.ops_per_process = 5;
  params.processes_per_node = 4;
  const FieldBenchResult result = run_field_pattern_a(cluster, params);
  ASSERT_FALSE(result.failed) << result.failure;
  EXPECT_EQ(result.write_log.operations(), 20u);
  EXPECT_EQ(result.read_log.operations(), 20u);
  // Phase separation: reads start after the last write ends.
  EXPECT_GE(result.read_log.first_start(), result.write_log.last_end());
}

TEST_P(FieldPatternModes, PatternBOverlapsWritersAndReaders) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, testbed_config(1, 2));
  FieldBenchParams params;
  params.mode = GetParam();
  params.ops_per_process = 6;
  params.processes_per_node = 4;
  const FieldBenchResult result = run_field_pattern_b(cluster, params);
  ASSERT_FALSE(result.failed) << result.failure;
  // Half the nodes write, half read: 4 writers, 4 readers.
  EXPECT_EQ(result.write_log.operations(), 24u);
  EXPECT_EQ(result.read_log.operations(), 24u);
  // The phases overlap in time (that is the point of pattern B).
  EXPECT_LT(result.read_log.first_start(), result.write_log.last_end());
  EXPECT_GT(result.aggregated_global_bandwidth(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, FieldPatternModes,
                         ::testing::Values(fdb::Mode::full, fdb::Mode::no_containers,
                                           fdb::Mode::no_index),
                         [](const auto& mode_info) {
                           switch (mode_info.param) {
                             case fdb::Mode::full: return "full";
                             case fdb::Mode::no_containers: return "no_containers";
                             case fdb::Mode::no_index: return "no_index";
                           }
                           return "unknown";
                         });

TEST(FieldBenchTest, PatternBUnderSharedForecastIndex) {
  // High contention in pattern B: every process (writers re-writing AND
  // readers racing them) goes through the one shared forecast index KV.
  sim::Scheduler sched;
  daos::Cluster cluster(sched, testbed_config(1, 2));
  FieldBenchParams params;
  params.mode = fdb::Mode::full;
  params.shared_forecast_index = true;
  params.ops_per_process = 4;
  params.processes_per_node = 4;
  const FieldBenchResult result = run_field_pattern_b(cluster, params);
  ASSERT_FALSE(result.failed) << result.failure;
  EXPECT_EQ(result.write_log.operations(), 16u);
  EXPECT_EQ(result.read_log.operations(), 16u);
  EXPECT_LT(result.read_log.first_start(), result.write_log.last_end());  // phases overlap
  // All designated keys live in the same forecast (the contention point).
  EXPECT_EQ(bench_field_key(params, 0, 0, true).most_significant(),
            bench_field_key(params, 7, 0, true).most_significant());
}

TEST(SchedulerDeadlock, BenchmarkStyleRunReportsBlockedProcesses) {
  // A process that never releases a mutex starves another; run() must raise
  // DeadlockError naming the number of blocked processes, not hang or exit 0.
  sim::Scheduler sched;
  sim::Mutex mutex(sched);
  auto holder = [](sim::Scheduler& s, sim::Mutex& m) -> sim::Task<void> {
    co_await m.lock();
    co_await s.delay(sim::seconds(0.001));
    // Exits still holding the lock.
  };
  auto waiter = [](sim::Mutex& m) -> sim::Task<void> {
    co_await m.lock();  // never acquired
    m.unlock();
  };
  sched.spawn(holder(sched, mutex));
  sched.spawn(waiter(mutex));
  EXPECT_THROW(sched.run(), sim::DeadlockError);
  EXPECT_EQ(sched.live_processes(), 1u);  // the waiter is still parked
}

TEST(FieldBenchTest, SingleClientNodePatternBSplitsProcesses) {
  sim::Scheduler sched;
  daos::Cluster cluster(sched, testbed_config(1, 1));
  FieldBenchParams params;
  params.ops_per_process = 3;
  params.processes_per_node = 6;  // 3 writers + 3 readers
  const FieldBenchResult result = run_field_pattern_b(cluster, params);
  ASSERT_FALSE(result.failed) << result.failure;
  EXPECT_EQ(result.write_log.operations(), 9u);
  EXPECT_EQ(result.read_log.operations(), 9u);
}

TEST(ExperimentTest, RepeatCollectsAllRepetitions) {
  int calls = 0;
  const RepetitionSummary summary = repeat(4, 1, [&](std::uint64_t seed) {
    ++calls;
    RunOutcome out;
    out.write_bw = static_cast<double>(seed % 10);
    out.read_bw = 1.0;
    return out;
  });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(summary.write.count(), 4u);
  EXPECT_FALSE(summary.any_failed);
}

TEST(ExperimentTest, RepeatTracksFailures) {
  const RepetitionSummary summary = repeat(3, 1, [&](std::uint64_t) {
    RunOutcome out;
    out.failed = true;
    out.failure = "injected";
    return out;
  });
  EXPECT_TRUE(summary.any_failed);
  EXPECT_TRUE(summary.write.empty());
  EXPECT_EQ(summary.failure, "injected");
}

TEST(ExperimentTest, BestOverPpnPicksHighestAggregate) {
  const BestOfPpn best = best_over_ppn({8, 16, 32}, 2, 1, [](std::size_t ppn, std::uint64_t) {
    RunOutcome out;
    out.write_bw = ppn == 16 ? 10.0 : 1.0;  // 16 is the sweet spot
    return out;
  });
  EXPECT_EQ(best.ppn, 16u);
  EXPECT_DOUBLE_EQ(best.summary.write.mean(), 10.0);
}

TEST(ExperimentTest, TestbedConfigMatchesPaperDeployments) {
  const daos::ClusterConfig tcp = testbed_config(4, 8);
  EXPECT_EQ(tcp.engines_per_server, 2u);
  EXPECT_EQ(tcp.client_sockets_in_use, 2u);
  EXPECT_EQ(tcp.provider.name, "tcp");

  const daos::ClusterConfig psm2 = testbed_config(4, 8, "psm2");
  EXPECT_EQ(psm2.engines_per_server, 1u);  // PSM2: single rail (paper 6.1.1)
  EXPECT_EQ(psm2.client_sockets_in_use, 1u);
  EXPECT_TRUE(psm2.validate().is_ok());
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ior::IorParams params;
  params.segments = 10;
  params.processes_per_node = 4;
  const RunOutcome a = run_ior_once(testbed_config(1, 1), params, 99);
  const RunOutcome b = run_ior_once(testbed_config(1, 1), params, 99);
  EXPECT_DOUBLE_EQ(a.write_bw, b.write_bw);
  EXPECT_DOUBLE_EQ(a.read_bw, b.read_bw);
  const RunOutcome c = run_ior_once(testbed_config(1, 1), params, 100);
  EXPECT_NE(a.write_bw, c.write_bw);  // different seed, different jitter
}

// ---- parallel run engine ----------------------------------------------------

TEST(RunPoolTest, ParallelMapReturnsResultsInIndexOrder) {
  const std::vector<std::size_t> out =
      parallel_map(std::size_t{100}, std::size_t{8}, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RunPoolTest, EveryJobRunsExactlyOnce) {
  constexpr std::size_t kJobs = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kJobs);
  RunPool pool(8);
  EXPECT_EQ(pool.threads(), 8u);
  pool.run(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(RunPoolTest, PoolIsReusableAcrossSweeps) {
  RunPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int sweep = 0; sweep < 5; ++sweep) {
    pool.run(40, [&](std::size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 5u * (39u * 40u / 2u));
}

TEST(RunPoolTest, LowestIndexedExceptionWinsAndSweepStillDrains) {
  std::vector<std::atomic<int>> hits(64);
  auto sweep = [&](std::size_t jobs) -> std::string {
    for (auto& h : hits) h.store(0);
    try {
      parallel_map(std::size_t{64}, jobs, [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i == 7 || i == 41) throw std::runtime_error("job " + std::to_string(i));
        return i;
      });
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  // Identical rethrow choice serial and parallel, and no job is skipped.
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    EXPECT_EQ(sweep(jobs), "job 7") << jobs << " jobs";
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(RunPoolTest, NormalizeAndDefaultJobs) {
  EXPECT_GE(normalize_jobs(0), 1u);  // 0 -> hardware_concurrency, min 1
  EXPECT_EQ(normalize_jobs(3), 3u);
  const std::size_t saved = default_jobs();
  set_default_jobs(5);
  EXPECT_EQ(default_jobs(), 5u);
  set_default_jobs(saved);
}

TEST(RunPoolTest, ParallelSweepBitIdenticalToSerial) {
  // The PR's core determinism claim: a real simulation sweep — fresh
  // scheduler + cluster per seed — folded at --jobs 1 and --jobs 8 yields
  // bit-identical per-seed RunOutcomes, not merely close ones.
  const auto run_one = [](std::size_t i) {
    FieldBenchParams params;
    params.ops_per_process = 3;
    params.processes_per_node = 4;
    return run_field_once(testbed_config(1, 1), params, i % 2 == 0 ? 'A' : 'B',
                          1000 + 37 * static_cast<std::uint64_t>(i));
  };
  const std::vector<RunOutcome> serial = parallel_map(std::size_t{12}, std::size_t{1}, run_one);
  const std::vector<RunOutcome> parallel = parallel_map(std::size_t{12}, std::size_t{8}, run_one);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].failed, parallel[i].failed) << "seed index " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial[i].write_bw),
              std::bit_cast<std::uint64_t>(parallel[i].write_bw))
        << "seed index " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial[i].read_bw),
              std::bit_cast<std::uint64_t>(parallel[i].read_bw))
        << "seed index " << i;
  }
}

TEST(ExperimentTest, RepeatAndBestOverPpnIdenticalAtAnyJobCount) {
  ior::IorParams params;
  params.segments = 10;
  params.processes_per_node = 4;
  const auto run = [&](std::uint64_t seed) { return run_ior_once(testbed_config(1, 1), params, seed); };
  const RepetitionSummary serial = repeat(5, 42, run, 1);
  const RepetitionSummary parallel = repeat(5, 42, run, 8);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.write.mean()),
            std::bit_cast<std::uint64_t>(parallel.write.mean()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.read.mean()),
            std::bit_cast<std::uint64_t>(parallel.read.mean()));

  const auto run_ppn = [&](std::size_t ppn, std::uint64_t seed) {
    ior::IorParams p = params;
    p.processes_per_node = ppn;
    return run_ior_once(testbed_config(1, 1), p, seed);
  };
  const BestOfPpn best_serial = best_over_ppn({2, 4, 8}, 2, 7, run_ppn, 1);
  const BestOfPpn best_parallel = best_over_ppn({2, 4, 8}, 2, 7, run_ppn, 8);
  EXPECT_EQ(best_serial.ppn, best_parallel.ppn);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(best_serial.summary.mean_aggregate()),
            std::bit_cast<std::uint64_t>(best_parallel.summary.mean_aggregate()));
}

TEST(ExperimentTest, MetricsSnapshotIdenticalAtAnyJobCount) {
  // The folded MetricsSnapshot inherits run_pool's determinism guarantee:
  // counters, gauges and histogram sample order must be bit-identical
  // whether the repetitions ran serially or on 8 workers.
  FieldBenchParams params;
  params.ops_per_process = 3;
  params.processes_per_node = 4;
  const auto run = [&](std::uint64_t seed) {
    return run_field_once(testbed_config(1, 1), params, 'A', seed);
  };
  const RepetitionSummary serial = repeat(4, 99, run, 1);
  const RepetitionSummary wide = repeat(4, 99, run, 8);
  ASSERT_FALSE(serial.any_failed);
  EXPECT_FALSE(serial.metrics.empty());
  EXPECT_TRUE(serial.metrics == wide.metrics);
  // Sanity-check one counter end to end: 4 procs x 3 ops x 4 repetitions.
  EXPECT_DOUBLE_EQ(serial.metrics.value("io.write.operations"), 48.0);
  EXPECT_DOUBLE_EQ(serial.metrics.value("fdb.fields_written"), 48.0);
}

TEST(FieldBenchTest, LayerCountersAggregatedIntoResult) {
  // Regression for the stats-flush bug: per-process FieldIo/Client counters
  // used to be dropped when worker coroutines finished, leaving the layer
  // totals of a run at zero.
  sim::Scheduler sched;
  daos::Cluster cluster(sched, testbed_config(1, 1));
  FieldBenchParams params;
  params.ops_per_process = 5;
  params.processes_per_node = 4;
  const FieldBenchResult result = run_field_pattern_a(cluster, params);
  ASSERT_FALSE(result.failed) << result.failure;
  EXPECT_EQ(result.field_stats.fields_written, 20u);
  EXPECT_EQ(result.field_stats.fields_read, 20u);
  EXPECT_EQ(result.field_stats.bytes_written, 20u * params.field_size);
  EXPECT_EQ(result.field_stats.bytes_read, 20u * params.field_size);
  EXPECT_GT(result.client_stats.kv_puts, 0u);        // index/catalogue traffic
  EXPECT_EQ(result.client_stats.array_writes, 20u);  // one array write per field
  EXPECT_GE(result.client_stats.bytes_written, result.field_stats.bytes_written);
}

TEST(StatsRaceTest, ConcurrentConstReadersAreRaceFree) {
  // Regression (run under TSan in scripts/check.sh): const order-statistic
  // accessors on an unsealed shared Summary must not mutate the cache.
  Summary shared;
  std::uint64_t v = 1;
  for (int i = 0; i < 1024; ++i) {
    v = v * 6364136223846793005ull + 1442695040888963407ull;
    shared.add(static_cast<double>(v >> 40));
  }
  const double expected_p95 = shared.percentile(95);
  const double expected_min = shared.min();
  const double expected_max = shared.max();
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (shared.percentile(95) != expected_p95 || shared.min() != expected_min ||
            shared.max() != expected_max) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(TraceIntegrationTest, FieldRunEmitsSpansForEveryLayer) {
  // One traced field run must yield closed spans from the harness ("io"),
  // the DAOS client ("daos") and the network ("net") on a single timeline.
  obs::TraceRecorder recorder;
  FieldBenchParams params;
  params.ops_per_process = 3;
  params.processes_per_node = 4;
  {
    obs::TraceSession session(recorder);
    const RunOutcome out = run_field_once(testbed_config(1, 1), params, 'A', 5);
    ASSERT_FALSE(out.failed);
  }
  ASSERT_GT(recorder.span_count(), 0u);
  std::size_t io_spans = 0;
  bool saw_daos = false;
  bool saw_net = false;
  for (const auto& span : recorder.spans()) {
    EXPECT_FALSE(span.open) << span.name;
    EXPECT_LE(span.start_ns, span.end_ns);
    const std::string cat = span.cat;
    if (cat == "io") ++io_spans;
    if (cat == "daos") saw_daos = true;
    if (cat == "net") saw_net = true;
  }
  // One "io" span per field op: 4 procs x 3 ops, write phase + read phase.
  EXPECT_EQ(io_spans, 24u);
  EXPECT_TRUE(saw_daos);
  EXPECT_TRUE(saw_net);
}

TEST(MpiBenchTest, Table2Shape) {
  // TCP: more pairs help up to ~8, then slightly degrade; PSM2 single pair
  // nearly saturates the adapter.
  const auto tcp1 = mpibench::sweep_transfer_sizes(net::tcp_provider(), 1);
  const auto tcp8 = mpibench::sweep_transfer_sizes(net::tcp_provider(), 8);
  const auto tcp16 = mpibench::sweep_transfer_sizes(net::tcp_provider(), 16);
  const auto psm2 = mpibench::sweep_transfer_sizes(net::psm2_provider(), 1);
  EXPECT_NEAR(to_gib_per_sec(tcp1.best_bandwidth), 3.1, 0.2);
  EXPECT_NEAR(to_gib_per_sec(tcp8.best_bandwidth), 9.5, 0.3);
  EXPECT_GT(tcp8.best_bandwidth, tcp16.best_bandwidth);
  EXPECT_NEAR(to_gib_per_sec(psm2.best_bandwidth), 12.1, 0.3);
}

// Paper-shape integration checks at reduced scale: the qualitative orderings
// the evaluation section reports must hold in the model.
TEST(PaperShapes, TwoServersBeatOne) {
  ior::IorParams params;
  params.segments = 20;
  params.processes_per_node = 24;
  const RunOutcome one = run_ior_once(testbed_config(1, 2), params, 5);
  const RunOutcome two = run_ior_once(testbed_config(2, 4), params, 5);
  ASSERT_FALSE(one.failed);
  ASSERT_FALSE(two.failed);
  EXPECT_GT(two.write_bw, one.write_bw * 1.5);
  EXPECT_GT(two.read_bw, one.read_bw * 1.2);
}

TEST(PaperShapes, NoIndexAtLeastAsFastAsFullUnderHighContention) {
  FieldBenchParams base;
  base.shared_forecast_index = true;
  base.ops_per_process = 10;
  base.processes_per_node = 16;
  FieldBenchParams full = base;
  full.mode = fdb::Mode::full;
  FieldBenchParams noindex = base;
  noindex.mode = fdb::Mode::no_index;
  const RunOutcome f = run_field_once(testbed_config(1, 2), full, 'A', 3);
  const RunOutcome n = run_field_once(testbed_config(1, 2), noindex, 'A', 3);
  ASSERT_FALSE(f.failed);
  ASSERT_FALSE(n.failed);
  EXPECT_GE(n.write_bw + n.read_bw, f.write_bw + f.read_bw);
}

TEST(PaperShapes, Psm2BeatsTcpAtEqualScale) {
  ior::IorParams params;
  params.segments = 20;
  params.processes_per_node = 8;
  const RunOutcome tcp = run_ior_once(testbed_config(2, 4, "tcp"), params, 11);
  const RunOutcome psm2 = run_ior_once(testbed_config(2, 4, "psm2"), params, 11);
  ASSERT_FALSE(tcp.failed);
  ASSERT_FALSE(psm2.failed);
  // Fig. 7: PSM2 above TCP (10-25% in the paper).  Note both run
  // single-engine servers for a fair comparison.
  const RunOutcome tcp_single = [&] {
    daos::ClusterConfig cfg = testbed_config(2, 4, "tcp");
    cfg.engines_per_server = 1;
    cfg.client_sockets_in_use = 1;
    return run_ior_once(cfg, params, 11);
  }();
  ASSERT_FALSE(tcp_single.failed);
  EXPECT_GT(psm2.write_bw, tcp_single.write_bw);
  EXPECT_GT(psm2.read_bw, tcp_single.read_bw);
}

TEST(PaperShapes, LargerFieldsFasterUnderContention) {
  // Fig. 6: 5 MiB fields beat 1 MiB fields in full mode, high contention.
  FieldBenchParams small;
  small.mode = fdb::Mode::full;
  small.shared_forecast_index = true;
  small.ops_per_process = 8;
  small.processes_per_node = 24;
  FieldBenchParams large = small;
  large.field_size = 5_MiB;
  const RunOutcome s = run_field_once(testbed_config(1, 2), small, 'A', 13);
  const RunOutcome l = run_field_once(testbed_config(1, 2), large, 'A', 13);
  ASSERT_FALSE(s.failed);
  ASSERT_FALSE(l.failed);
  EXPECT_GT(l.write_bw, s.write_bw * 1.3);
  EXPECT_GT(l.read_bw, s.read_bw * 1.3);
}

TEST(PaperShapes, PatternBAggregatedComparableToPatternA) {
  // Section 6.3.1: aggregated pattern-B bandwidth shows "no substantial
  // performance degradation" versus pattern A.
  FieldBenchParams params;
  params.mode = fdb::Mode::no_containers;
  params.shared_forecast_index = true;
  params.ops_per_process = 10;
  params.processes_per_node = 16;
  const RunOutcome a = run_field_once(testbed_config(1, 2), params, 'A', 17);
  const RunOutcome b = run_field_once(testbed_config(1, 2), params, 'B', 17);
  ASSERT_FALSE(a.failed);
  ASSERT_FALSE(b.failed);
  const double agg_a = a.write_bw + a.read_bw;
  const double agg_b = b.write_bw + b.read_bw;
  EXPECT_GT(agg_b, agg_a * 0.5);
}

}  // namespace
}  // namespace nws::bench
