// Unit and property tests for the SCM (Optane DCPMM) model.
#include <gtest/gtest.h>

#include "scm/scm.h"

#include "common/rng.h"

namespace nws::scm {
namespace {

using nws::operator""_KiB;
using nws::operator""_MiB;
using nws::operator""_GiB;

DcpmmSpec tiny_spec() {
  DcpmmSpec spec;
  spec.capacity = 4_MiB;
  return spec;
}

TEST(ScmRegionTest, NextGenIoSocketGeometry) {
  // Paper 6.1: six 256 GiB first-generation DCPMMs per socket, AppDirect
  // interleaved.
  const ScmRegion region("sock0", DcpmmSpec{}, 6);
  EXPECT_EQ(region.capacity(), 1536_GiB);
  EXPECT_EQ(region.modules(), 6u);
  // Interleaving aggregates module bandwidth; reads ~3x writes.
  EXPECT_DOUBLE_EQ(region.read_bandwidth(), 6.0 * gib_per_sec(6.0));
  EXPECT_DOUBLE_EQ(region.write_bandwidth(), 6.0 * gib_per_sec(2.0));
  EXPECT_GT(region.read_bandwidth(), 2.5 * region.write_bandwidth());
  // SCM latency sits between DRAM and NVMe: sub-microsecond.
  EXPECT_LT(region.read_latency(), sim::microseconds(1));
  EXPECT_GT(region.read_latency(), region.write_latency());  // ADR hides write latency
}

TEST(ScmRegionTest, AllocateTracksUsage) {
  ScmRegion region("r", tiny_spec(), 2);  // 8 MiB
  EXPECT_EQ(region.available(), 8_MiB);
  const auto a = region.allocate(3_MiB);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(region.used(), 3_MiB);
  EXPECT_EQ(region.available(), 5_MiB);
  const auto b = region.allocate(5_MiB);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(region.available(), 0u);
  EXPECT_EQ(region.allocation_count(), 2u);
  EXPECT_EQ(region.allocation_size(a.value()), 3_MiB);
}

TEST(ScmRegionTest, ExhaustionReturnsNoSpace) {
  ScmRegion region("r", tiny_spec(), 1);  // 4 MiB
  EXPECT_TRUE(region.allocate(4_MiB).is_ok());
  const auto overflow = region.allocate(1);
  ASSERT_FALSE(overflow.is_ok());
  EXPECT_EQ(overflow.status().code(), Errc::no_space);
}

TEST(ScmRegionTest, FreeReturnsSpace) {
  ScmRegion region("r", tiny_spec(), 1);
  const auto a = region.allocate(4_MiB);
  ASSERT_TRUE(a.is_ok());
  region.free(a.value());
  EXPECT_EQ(region.used(), 0u);
  EXPECT_TRUE(region.allocate(4_MiB).is_ok());
}

TEST(ScmRegionTest, DoubleFreeIsALogicError) {
  ScmRegion region("r", tiny_spec(), 1);
  const auto a = region.allocate(1_MiB);
  region.free(a.value());
  EXPECT_THROW(region.free(a.value()), std::logic_error);
  EXPECT_THROW((void)region.allocation_size(a.value()), std::out_of_range);
}

TEST(ScmRegionTest, ZeroSizeAllocationInvalid) {
  ScmRegion region("r", tiny_spec(), 1);
  EXPECT_EQ(region.allocate(0).status().code(), Errc::invalid);
}

TEST(ScmRegionTest, InvalidConstruction) {
  EXPECT_THROW(ScmRegion("r", tiny_spec(), 0), std::invalid_argument);
  DcpmmSpec zero;
  zero.capacity = 0;
  EXPECT_THROW(ScmRegion("r", zero, 1), std::invalid_argument);
}

// Property: any interleaving of allocations and frees conserves capacity.
class ScmChurn : public ::testing::TestWithParam<int> {};

TEST_P(ScmChurn, AllocationAccountingBalances) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  ScmRegion region("r", DcpmmSpec{.capacity = 64_MiB}, 4);  // 256 MiB
  std::vector<std::pair<std::uint64_t, Bytes>> live;
  Bytes expected_used = 0;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.next_double() < 0.6) {
      const Bytes size = (1 + rng.next_below(8)) * 1_MiB;
      const auto alloc = region.allocate(size);
      if (alloc.is_ok()) {
        live.emplace_back(alloc.value(), size);
        expected_used += size;
      } else {
        EXPECT_EQ(alloc.status().code(), Errc::no_space);
        EXPECT_GT(size, region.available());
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      region.free(live[pick].first);
      expected_used -= live[pick].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(region.used(), expected_used);
    ASSERT_EQ(region.allocation_count(), live.size());
    ASSERT_LE(region.used(), region.capacity());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScmChurn, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace nws::scm
