// Self-tests for tools/nwslint.  The rule checks are driven in-process over
// fixture snippets in tools/nwslint/testdata/: each `// expect: <rule>`
// marker inside a snippet names a rule that must fire on the next
// non-marker line, and any unexpected finding fails the test, so both
// false negatives and false positives are caught.  The suite also locks
// the config/schema parsers' error handling and — the real guard — lints
// the actual repository tree with the actual scripts/nwslint.conf and
// scripts/obs_schema.txt, asserting zero findings.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

using nws::lint::Config;
using nws::lint::Finding;
using nws::lint::StatusFns;

// A self-contained layer DAG + obs schema sized for the fixtures, so the
// fixtures stay meaningful even as the real scripts/ files evolve.
constexpr const char* kConf = R"(# fixture config
layer common:
layer sim: common
layer daos: common sim
layer fdb: common daos sim
envvar NWS_
)";

constexpr const char* kSchema = R"(# fixture schema
category io
category daos
span io io
span kv_put daos
span kv_get daos
metric daos.kv_puts counter
metric net.peak_concurrent_flows gauge
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open fixture " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Parses `// expect: <rule>` markers: each one predicts a finding of that
// rule on the next line that is not itself a marker.
std::vector<std::pair<int, std::string>> expected_findings(const std::string& content) {
  std::vector<std::string> lines;
  std::stringstream in(content);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  const auto marker_rule = [](const std::string& text) -> std::string {
    const std::size_t at = text.find("// expect:");
    if (at == std::string::npos) return {};
    std::istringstream rest(text.substr(at + 10));
    std::string rule;
    rest >> rule;
    return rule;
  };

  std::vector<std::pair<int, std::string>> expected;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string rule = marker_rule(lines[i]);
    if (rule.empty()) continue;
    std::size_t target = i + 1;
    while (target < lines.size() && !marker_rule(lines[target]).empty()) ++target;
    expected.emplace_back(static_cast<int>(target) + 1, rule);  // 1-indexed
  }
  std::sort(expected.begin(), expected.end());
  return expected;
}

// Lints one fixture as if it sat at `rel_path` in the repo, comparing the
// (line, rule) set of findings against the snippet's expect markers.
void check_fixture(const std::string& snippet, const std::string& rel_path) {
  const std::string content = read_file(std::string(NWSLINT_TESTDATA_DIR) + "/" + snippet);
  const Config config = nws::lint::parse_config(kConf, kSchema);

  StatusFns fns;
  nws::lint::collect_status_fns(content, fns);
  const std::vector<Finding> findings = nws::lint::lint_file(rel_path, content, config, fns);

  std::vector<std::pair<int, std::string>> actual;
  actual.reserve(findings.size());
  for (const Finding& f : findings) actual.emplace_back(f.line, f.rule);
  std::sort(actual.begin(), actual.end());

  const std::vector<std::pair<int, std::string>> expected = expected_findings(content);
  if (actual != expected) {
    std::string report = snippet + " findings diverge from its expect markers.\nActual:\n";
    for (const Finding& f : findings) report += "  " + f.to_string() + "\n";
    report += "Expected:\n";
    for (const auto& e : expected) {
      report += "  line " + std::to_string(e.first) + ": [" + e.second + "]\n";
    }
    FAIL() << report;
  }
}

TEST(NwslintFixtures, Determinism) {
  check_fixture("bad_determinism.snippet", "src/sim/bad_determinism.cc");
}

TEST(NwslintFixtures, Layering) {
  check_fixture("bad_layering.snippet", "src/sim/bad_layering.cc");
}

TEST(NwslintFixtures, ObsSchema) {
  check_fixture("bad_obs.snippet", "src/daos/bad_obs.cc");
}

TEST(NwslintFixtures, StatusDiscard) {
  check_fixture("bad_status.snippet", "src/fdb/bad_status.cc");
}

TEST(NwslintFixtures, WellFormedSuppressionsSilenceEverything) {
  check_fixture("suppressed_clean.snippet", "src/sim/suppressed_clean.cc");
}

TEST(NwslintFixtures, MalformedSuppressionsAreFindingsAndSuppressNothing) {
  check_fixture("bad_suppression.snippet", "src/sim/bad_suppression.cc");
}

TEST(NwslintRules, ObsSchemaSkippedInTests) {
  // tests/ may poke at unregistered names (they fabricate metrics all the
  // time); only src/ and bench/ emit production telemetry.
  const Config config = nws::lint::parse_config(kConf, kSchema);
  const std::string content = "void f(M& m) { m.counter(\"not.registered\", 1.0); }\n";
  StatusFns fns;
  EXPECT_TRUE(nws::lint::lint_file("tests/x_test.cc", content, config, fns).empty());
  EXPECT_EQ(nws::lint::lint_file("src/daos/x.cc", content, config, fns).size(), 1u);
}

TEST(NwslintRules, BenchCodeSitsAboveTheLayerDag) {
  const Config config = nws::lint::parse_config(kConf, kSchema);
  const std::string content = "#include \"daos/client.h\"\n#include \"sim/time.h\"\n";
  StatusFns fns;
  EXPECT_TRUE(nws::lint::lint_file("bench/x.cc", content, config, fns).empty());
}

TEST(NwslintRules, UndeclaredSrcLayerIsAFinding) {
  const Config config = nws::lint::parse_config(kConf, kSchema);
  StatusFns fns;
  const std::vector<Finding> findings =
      nws::lint::lint_file("src/mystery/x.cc", "int x;\n", config, fns);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
}

TEST(NwslintConfig, CycleInLayerDagIsRejected) {
  EXPECT_THROW(nws::lint::parse_config("layer a: b\nlayer b: a\n", kSchema), std::runtime_error);
}

TEST(NwslintConfig, UndeclaredDependencyIsRejected) {
  EXPECT_THROW(nws::lint::parse_config("layer a: ghost\n", kSchema), std::runtime_error);
}

TEST(NwslintConfig, DuplicateLayerIsRejected) {
  EXPECT_THROW(nws::lint::parse_config("layer a:\nlayer a:\n", kSchema), std::runtime_error);
}

TEST(NwslintConfig, UnknownDirectiveIsRejected) {
  EXPECT_THROW(nws::lint::parse_config("frobnicate x\n", kSchema), std::runtime_error);
}

TEST(NwslintSchema, DuplicateSpanIsRejected) {
  EXPECT_THROW(
      nws::lint::parse_config(kConf, "category io\nspan io io\nspan io io\n"),
      std::runtime_error);
}

TEST(NwslintSchema, UndeclaredCategoryIsRejected) {
  EXPECT_THROW(nws::lint::parse_config(kConf, "span orphan nowhere\n"), std::runtime_error);
}

TEST(NwslintSchema, UnknownMetricKindIsRejected) {
  EXPECT_THROW(nws::lint::parse_config(kConf, "metric x.y summary\n"), std::runtime_error);
}

TEST(NwslintSchema, DuplicateMetricIsRejected) {
  EXPECT_THROW(
      nws::lint::parse_config(kConf, "metric x.y counter\nmetric x.y counter\n"),
      std::runtime_error);
}

// The guard the whole tool exists for: the real tree, linted with the real
// config, is clean.  A rule regression, a new violation, or a stale
// scripts/obs_schema.txt all fail here before they fail in CI.
TEST(NwslintTree, RepositoryIsClean) {
  const std::string root = NWSLINT_SOURCE_DIR;
  const Config config =
      nws::lint::load_config(root + "/scripts/nwslint.conf", root + "/scripts/obs_schema.txt");
  const std::vector<Finding> findings =
      nws::lint::lint_tree(root, {"src", "bench", "tests", "examples", "tools"}, config);
  std::string report;
  for (const Finding& f : findings) report += f.to_string() + "\n";
  EXPECT_TRUE(findings.empty()) << report;
}

}  // namespace
