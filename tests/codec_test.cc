// Tests for the GRIB-style codec and the synthetic field generator.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/field_generator.h"
#include "codec/grib.h"

namespace nws::codec {
namespace {

using nws::operator""_MiB;

Field small_field() {
  Field f;
  f.nlat = 4;
  f.nlon = 8;
  f.values.resize(32);
  for (std::size_t i = 0; i < f.values.size(); ++i) {
    f.values[i] = 250.0 + 0.5 * static_cast<double>(i);
  }
  return f;
}

TEST(GribCodec, RoundTripWithinQuantisationBound) {
  const Field f = small_field();
  const auto encoded = encode(f);
  ASSERT_TRUE(encoded.is_ok());
  const auto decoded = decode(encoded.value());
  ASSERT_TRUE(decoded.is_ok());
  const Field& g = decoded.value();
  ASSERT_EQ(g.nlat, f.nlat);
  ASSERT_EQ(g.nlon, f.nlon);
  const double bound = quantisation_error_bound(f);
  for (std::size_t i = 0; i < f.values.size(); ++i) {
    EXPECT_NEAR(g.values[i], f.values[i], bound + 1e-12) << "point " << i;
  }
}

TEST(GribCodec, ConstantFieldIsExact) {
  Field f;
  f.nlat = 3;
  f.nlon = 3;
  f.values.assign(9, 273.15);
  const auto encoded = encode(f);
  ASSERT_TRUE(encoded.is_ok());
  const Field g = decode(encoded.value()).value();
  for (const double v : g.values) EXPECT_DOUBLE_EQ(v, 273.15);
}

TEST(GribCodec, EncodedSizeMatchesPrediction) {
  const Field f = small_field();
  EncodeOptions opts;
  for (const unsigned bits : {1u, 7u, 8u, 12u, 16u, 24u, 32u}) {
    opts.bits_per_value = bits;
    const auto encoded = encode(f, opts);
    ASSERT_TRUE(encoded.is_ok()) << bits;
    EXPECT_EQ(encoded.value().size(), encoded_size(f.nlat, f.nlon, opts)) << bits;
  }
}

TEST(GribCodec, MorePrecisionLowersError) {
  const Field f = small_field();
  EncodeOptions lo;
  lo.bits_per_value = 8;
  EncodeOptions hi;
  hi.bits_per_value = 24;
  EXPECT_GT(quantisation_error_bound(f, lo), quantisation_error_bound(f, hi));
}

TEST(GribCodec, RejectsInvalidInput) {
  Field f;
  EXPECT_EQ(encode(f).status().code(), Errc::invalid);  // empty grid
  f.nlat = 2;
  f.nlon = 2;
  f.values = {1.0, 2.0, 3.0};  // wrong count
  EXPECT_EQ(encode(f).status().code(), Errc::invalid);
  f.values = {1.0, 2.0, 3.0, std::nan("")};
  EXPECT_EQ(encode(f).status().code(), Errc::invalid);
  f.values = {1.0, 2.0, 3.0, 4.0};
  EncodeOptions opts;
  opts.bits_per_value = 0;
  EXPECT_EQ(encode(f, opts).status().code(), Errc::invalid);
  opts.bits_per_value = 33;
  EXPECT_EQ(encode(f, opts).status().code(), Errc::invalid);
}

TEST(GribCodec, RejectsCorruptMessages) {
  auto msg = encode(small_field()).value();
  EXPECT_EQ(decode(nullptr, 0).status().code(), Errc::invalid);
  EXPECT_EQ(decode(msg.data(), 8).status().code(), Errc::invalid);  // truncated

  auto bad_magic = msg;
  bad_magic[0] = 'X';
  EXPECT_EQ(decode(bad_magic).status().code(), Errc::invalid);

  auto bad_version = msg;
  bad_version[4] = 99;
  EXPECT_EQ(decode(bad_version).status().code(), Errc::unsupported);

  auto bad_trailer = msg;
  bad_trailer.back() = 'x';
  EXPECT_EQ(decode(bad_trailer).status().code(), Errc::invalid);

  auto truncated = msg;
  truncated.pop_back();
  EXPECT_EQ(decode(truncated).status().code(), Errc::invalid);
}

// Property: round-trip error stays within the bound for every parameter
// type and bit width.
struct CodecCase {
  Parameter parameter;
  unsigned bits;
};

class CodecProperty : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecProperty, RoundTripBoundHolds) {
  const auto [parameter, bits] = GetParam();
  GeneratorOptions gen;
  gen.parameter = parameter;
  gen.nlat = 48;
  gen.nlon = 96;
  gen.seed = 7;
  const Field f = generate_field(gen);

  EncodeOptions opts;
  opts.bits_per_value = bits;
  const auto encoded = encode(f, opts);
  ASSERT_TRUE(encoded.is_ok());
  const Field g = decode(encoded.value()).value();
  const double bound = quantisation_error_bound(f, opts);
  double max_err = 0.0;
  for (std::size_t i = 0; i < f.values.size(); ++i) {
    max_err = std::max(max_err, std::abs(g.values[i] - f.values[i]));
  }
  EXPECT_LE(max_err, bound * (1.0 + 1e-9) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ParamsAndWidths, CodecProperty,
    ::testing::Values(CodecCase{Parameter::temperature, 8}, CodecCase{Parameter::temperature, 16},
                      CodecCase{Parameter::temperature, 24}, CodecCase{Parameter::geopotential, 16},
                      CodecCase{Parameter::wind_u, 12}, CodecCase{Parameter::specific_humidity, 16},
                      CodecCase{Parameter::specific_humidity, 20}));

TEST(FieldGenerator, PhysicallyPlausibleTemperature) {
  GeneratorOptions gen;
  gen.nlat = 64;
  gen.nlon = 128;
  const Field f = generate_field(gen);
  double sum = 0.0;
  for (const double v : f.values) {
    EXPECT_GT(v, 150.0);
    EXPECT_LT(v, 350.0);
    sum += v;
  }
  const double mean = sum / static_cast<double>(f.points());
  EXPECT_GT(mean, 220.0);
  EXPECT_LT(mean, 290.0);
  // Warm equator, cold poles: equatorial band warmer than polar band.
  double polar = 0.0;
  double equatorial = 0.0;
  for (std::uint32_t lo = 0; lo < f.nlon; ++lo) {
    polar += f.at(0, lo);
    equatorial += f.at(f.nlat / 2, lo);
  }
  EXPECT_GT(equatorial, polar + 10.0 * f.nlon);
}

TEST(FieldGenerator, HumidityNonNegative) {
  GeneratorOptions gen;
  gen.parameter = Parameter::specific_humidity;
  gen.nlat = 32;
  gen.nlon = 64;
  const Field f = generate_field(gen);
  for (const double v : f.values) EXPECT_GE(v, 0.0);
}

TEST(FieldGenerator, DeterministicPerSeedAndStep) {
  GeneratorOptions gen;
  gen.nlat = 16;
  gen.nlon = 32;
  const Field a = generate_field(gen);
  const Field b = generate_field(gen);
  EXPECT_EQ(a.values, b.values);
  gen.step_hours = 6.0;
  const Field c = generate_field(gen);
  EXPECT_NE(a.values, c.values);
}

TEST(FieldGenerator, GridSizingHitsTargetEncodedSize) {
  for (const Bytes target : {1_MiB, 2_MiB, 5_MiB}) {
    std::uint32_t nlat = 0;
    std::uint32_t nlon = 0;
    grid_for_encoded_size(target, nlat, nlon);
    const Bytes actual = encoded_size(nlat, nlon);
    EXPECT_GT(actual, target * 8 / 10);
    EXPECT_LT(actual, target * 12 / 10);
  }
}

TEST(FieldGenerator, ParameterNames) {
  EXPECT_STREQ(parameter_name(Parameter::temperature), "t");
  EXPECT_STREQ(parameter_name(Parameter::geopotential), "z");
}

}  // namespace
}  // namespace nws::codec
