// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/time.h"

namespace nws::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(seconds(1.0), 1000000000);
  EXPECT_EQ(milliseconds(1.5), 1500000);
  EXPECT_EQ(microseconds(2.0), 2000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
}

TEST(SimTime, TransferTimeRoundsUp) {
  EXPECT_EQ(transfer_time(0.0, 1e9), 0);
  EXPECT_GE(transfer_time(1.0, 1e30), 1);  // never zero for nonzero bytes
  // 1 GiB at 1 GiB/s = 1 s.
  EXPECT_EQ(transfer_time(1073741824.0, 1073741824.0), kSecond);
}

TEST(Scheduler, DelayAdvancesClock) {
  Scheduler sched;
  TimePoint end = -1;
  sched.spawn([](Scheduler& s, TimePoint& out) -> Task<void> {
    co_await s.delay(seconds(1.5));
    out = s.now();
  }(sched, end));
  sched.run();
  EXPECT_EQ(end, seconds(1.5));
  EXPECT_EQ(sched.live_processes(), 0u);
}

TEST(Scheduler, EventsOrderedByTimeThenSequence) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [](Scheduler& s, std::vector<int>& out, int id, Duration d) -> Task<void> {
    co_await s.delay(d);
    out.push_back(id);
  };
  sched.spawn(proc(sched, order, 1, seconds(2)));
  sched.spawn(proc(sched, order, 2, seconds(1)));
  sched.spawn(proc(sched, order, 3, seconds(1)));  // same time as 2: spawn order wins
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Scheduler, NestedTaskCallChain) {
  Scheduler sched;
  auto inner = [](Scheduler& s) -> Task<int> {
    co_await s.delay(seconds(1));
    co_return 21;
  };
  auto middle = [&inner](Scheduler& s) -> Task<int> {
    const int v = co_await inner(s);
    co_return v * 2;
  };
  int result = 0;
  sched.spawn([](Scheduler& s, decltype(middle)& mid, int& out) -> Task<void> {
    out = co_await mid(s);
  }(sched, middle, result));
  sched.run();
  EXPECT_EQ(result, 42);
}

TEST(Scheduler, DeepCallChainDoesNotOverflowStack) {
  Scheduler sched;
  // 100k-deep recursive awaits: passes only with symmetric transfer.  ASan
  // instrumentation defeats the tail calls symmetric transfer compiles to,
  // so resume chains legitimately consume native stack there — keep the
  // depth well inside the stack limit under sanitizers.
#if defined(__SANITIZE_ADDRESS__)
  constexpr int kDepth = 2000;
#else
  constexpr int kDepth = 100000;
#endif
  struct Rec {
    static Task<int> down(Scheduler& s, int depth) {
      if (depth == 0) {
        co_await s.delay(1);
        co_return 0;
      }
      const int v = co_await down(s, depth - 1);
      co_return v + 1;
    }
  };
  int result = -1;
  sched.spawn([](Scheduler& s, int& out) -> Task<void> { out = co_await Rec::down(s, kDepth); }(sched, result));
  sched.run();
  EXPECT_EQ(result, kDepth);
}

TEST(Scheduler, ExceptionPropagatesToRun) {
  Scheduler sched;
  sched.spawn([](Scheduler& s) -> Task<void> {
    co_await s.delay(1);
    throw std::runtime_error("boom");
  }(sched));
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, ExceptionCrossesTaskBoundary) {
  Scheduler sched;
  auto thrower = [](Scheduler& s) -> Task<int> {
    co_await s.delay(1);
    throw std::runtime_error("inner failure");
  };
  bool caught = false;
  sched.spawn([](Scheduler& s, decltype(thrower)& t, bool& out) -> Task<void> {
    try {
      (void)co_await t(s);
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(sched, thrower, caught));
  sched.run();
  EXPECT_TRUE(caught);
}

TEST(Scheduler, CallbackTimersFireAndCancel) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_callback(seconds(1), [&] { ++fired; });
  Timer cancelled = sched.schedule_callback(seconds(2), [&] { ++fired; });
  cancelled.cancel();
  EXPECT_FALSE(cancelled.pending());
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), seconds(1));  // cancelled event did not advance time
}

TEST(Scheduler, TimerCancelSafeAfterSchedulerDestroyed) {
  // A fault plan (or any subsystem) may hold Timers beyond the simulation's
  // life; cancel() must not touch freed scheduler memory.
  Timer survivor;
  {
    Scheduler sched;
    survivor = sched.schedule_callback(seconds(1), [] {});
    EXPECT_TRUE(survivor.pending());
  }
  survivor.cancel();  // scheduler is gone: must be a no-op, not a use-after-free
  EXPECT_FALSE(survivor.pending());
  survivor.cancel();  // idempotent
}

TEST(Scheduler, FiredTimerNotPendingAndCancelHarmless) {
  Scheduler sched;
  int fired = 0;
  Timer timer = sched.schedule_callback(seconds(1), [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());  // fired, so no longer pending
  timer.cancel();                 // cancelling after the fact changes nothing
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(Scheduler, CancelledTimerSlotRecycledEagerly) {
  // Regression: cancelled slots used to be reclaimed only when the queue
  // drained the dead event, so a schedule-then-cancel loop with far-future
  // deadlines (the retry/fault-plan pattern) grew the slot table without
  // bound.  Cancel must return the slot to the free list immediately.
  Scheduler sched;
  for (int i = 0; i < 1000; ++i) {
    Timer t = sched.schedule_callback(seconds(1000), [] {});
    t.cancel();
  }
  EXPECT_LE(sched.timer_slot_count(), 2u);
  EXPECT_EQ(sched.free_timer_slots(), sched.timer_slot_count());
  // A live timer still fires correctly through the 1000 dead queued events.
  int fired = 0;
  sched.schedule_callback(seconds(1), [&] { ++fired; });
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), seconds(1));  // dead events do not advance time
}

TEST(Scheduler, StaleHandleCannotCancelRecycledSlot) {
  // With eager recycling a cancelled Timer's slot may be reused while the
  // old handle is still alive; the generation counter must make the stale
  // handle inert.
  Scheduler sched;
  int fired = 0;
  Timer a = sched.schedule_callback(seconds(1), [&] { fired += 1; });
  a.cancel();
  Timer b = sched.schedule_callback(seconds(2), [&] { fired += 10; });  // reuses a's slot
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  a.cancel();  // stale generation: must not disturb b
  EXPECT_TRUE(b.pending());
  sched.run();
  EXPECT_EQ(fired, 10);
}

TEST(Scheduler, TimerCancelReleasesCallbackCaptures) {
  // cancel() must drop the stored std::function immediately so captured
  // resources are freed before the queue drains the dead event.
  Scheduler sched;
  auto resource = std::make_shared<int>(7);
  Timer timer = sched.schedule_callback(seconds(1), [resource] { (void)*resource; });
  EXPECT_EQ(resource.use_count(), 2);
  timer.cancel();
  EXPECT_EQ(resource.use_count(), 1);  // the capture is gone right away
  sched.run();
  EXPECT_EQ(resource.use_count(), 1);
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler sched;
  auto mutex = std::make_unique<Mutex>(sched);
  sched.spawn([](Mutex& m) -> Task<void> {
    co_await m.lock();
    // never unlocks; second locker blocks forever
    co_return;
  }(*mutex));
  sched.spawn([](Mutex& m) -> Task<void> {
    co_await m.lock();
    m.unlock();
  }(*mutex));
  // First process completes holding the lock, second blocks: queue drains
  // with one live process.
  EXPECT_THROW(sched.run(), DeadlockError);
}

TEST(Scheduler, SpawnEmptyTaskThrows) {
  Scheduler sched;
  Task<void> empty;
  EXPECT_THROW(sched.spawn(std::move(empty)), std::invalid_argument);
}

TEST(Scheduler, NegativeDelayThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.delay(-1), std::invalid_argument);
}

TEST(Mutex, FifoOrderUnderContention) {
  Scheduler sched;
  Mutex mutex(sched);
  std::vector<int> order;
  auto proc = [](Scheduler& s, Mutex& m, std::vector<int>& out, int id) -> Task<void> {
    co_await s.delay(id);  // stagger lock attempts: 1, 2, 3
    co_await m.lock();
    co_await s.delay(seconds(1));  // hold across simulated time
    out.push_back(id);
    m.unlock();
  };
  for (int id = 1; id <= 3; ++id) sched.spawn(proc(sched, mutex, order, id));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(mutex.locked());
}

TEST(Mutex, CriticalSectionsSerialise) {
  Scheduler sched;
  Mutex mutex(sched);
  TimePoint last_end = 0;
  auto proc = [](Scheduler& s, Mutex& m, TimePoint& end) -> Task<void> {
    co_await m.lock();
    co_await s.delay(seconds(1));
    end = s.now();
    m.unlock();
  };
  for (int i = 0; i < 5; ++i) sched.spawn(proc(sched, mutex, last_end));
  sched.run();
  EXPECT_EQ(last_end, seconds(5));  // 5 x 1 s serialised critical sections
}

TEST(Mutex, UnlockWhileUnlockedThrows) {
  Scheduler sched;
  Mutex mutex(sched);
  EXPECT_THROW(mutex.unlock(), std::logic_error);
}

TEST(ScopedLockTest, ReleasesOnScopeExit) {
  Scheduler sched;
  Mutex mutex(sched);
  int entered = 0;
  auto proc = [](Scheduler& s, Mutex& m, int& count) -> Task<void> {
    auto guard = co_await ScopedLock::acquire(m);
    ++count;
    co_await s.delay(seconds(1));
  };
  sched.spawn(proc(sched, mutex, entered));
  sched.spawn(proc(sched, mutex, entered));
  sched.run();
  EXPECT_EQ(entered, 2);
  EXPECT_FALSE(mutex.locked());
}

TEST(SemaphoreTest, BoundsConcurrency) {
  Scheduler sched;
  Semaphore sem(sched, 2);
  int concurrent = 0;
  int peak = 0;
  auto proc = [](Scheduler& s, Semaphore& sm, int& cur, int& pk) -> Task<void> {
    co_await sm.acquire();
    ++cur;
    if (cur > pk) pk = cur;
    co_await s.delay(seconds(1));
    --cur;
    sm.release();
  };
  for (int i = 0; i < 6; ++i) sched.spawn(proc(sched, sem, concurrent, peak));
  sched.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sched.now(), seconds(3));  // 6 jobs, 2 wide, 1 s each
  EXPECT_EQ(sem.available(), 2u);
}

TEST(BarrierTest, ReleasesAllTogether) {
  Scheduler sched;
  Barrier barrier(sched, 3);
  std::vector<TimePoint> release_times;
  auto proc = [](Scheduler& s, Barrier& b, std::vector<TimePoint>& out, Duration arrive) -> Task<void> {
    co_await s.delay(arrive);
    co_await b.arrive_and_wait();
    out.push_back(s.now());
  };
  sched.spawn(proc(sched, barrier, release_times, seconds(1)));
  sched.spawn(proc(sched, barrier, release_times, seconds(2)));
  sched.spawn(proc(sched, barrier, release_times, seconds(3)));
  sched.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (const TimePoint t : release_times) EXPECT_EQ(t, seconds(3));
}

TEST(BarrierTest, CyclicReuse) {
  Scheduler sched;
  Barrier barrier(sched, 2);
  int rounds_done = 0;
  auto proc = [](Scheduler& s, Barrier& b, int& done, Duration step) -> Task<void> {
    for (int round = 0; round < 3; ++round) {
      co_await s.delay(step);
      co_await b.arrive_and_wait();
    }
    ++done;
  };
  sched.spawn(proc(sched, barrier, rounds_done, seconds(1)));
  sched.spawn(proc(sched, barrier, rounds_done, seconds(2)));
  sched.run();
  EXPECT_EQ(rounds_done, 2);
  EXPECT_EQ(sched.now(), seconds(6));  // slower process paces all 3 rounds
}

TEST(BarrierTest, ZeroPartiesThrows) {
  Scheduler sched;
  EXPECT_THROW(Barrier(sched, 0), std::invalid_argument);
}

TEST(GateTest, BlocksUntilOpened) {
  Scheduler sched;
  Gate gate(sched);
  TimePoint passed_at = -1;
  sched.spawn([](Scheduler& s, Gate& g, TimePoint& out) -> Task<void> {
    co_await g.wait();
    out = s.now();
  }(sched, gate, passed_at));
  sched.schedule_callback(seconds(5), [&] { gate.open(); });
  sched.run();
  EXPECT_EQ(passed_at, seconds(5));
}

TEST(GateTest, OpenGatePassesImmediately) {
  Scheduler sched;
  Gate gate(sched);
  gate.open();
  TimePoint passed_at = -1;
  sched.spawn([](Scheduler& s, Gate& g, TimePoint& out) -> Task<void> {
    co_await g.wait();
    out = s.now();
  }(sched, gate, passed_at));
  sched.run();
  EXPECT_EQ(passed_at, 0);
}

TEST(CountDownLatchTest, WaitsForAllSignals) {
  Scheduler sched;
  CountDownLatch latch(sched, 3);
  TimePoint joined_at = -1;
  auto worker = [](Scheduler& s, CountDownLatch& l, Duration d) -> Task<void> {
    co_await s.delay(d);
    l.count_down();
  };
  sched.spawn(worker(sched, latch, seconds(1)));
  sched.spawn(worker(sched, latch, seconds(4)));
  sched.spawn(worker(sched, latch, seconds(2)));
  sched.spawn([](Scheduler& s, CountDownLatch& l, TimePoint& out) -> Task<void> {
    co_await l.wait();
    out = s.now();
  }(sched, latch, joined_at));
  sched.run();
  EXPECT_EQ(joined_at, seconds(4));
}

// Determinism property: identical programs produce identical event traces.
class SchedulerDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerDeterminism, RepeatedRunsIdentical) {
  const int n_procs = GetParam();
  auto run_once = [n_procs]() {
    Scheduler sched;
    auto mutex = std::make_shared<Mutex>(sched);
    std::vector<std::pair<int, TimePoint>> trace;
    auto proc = [](Scheduler& s, std::shared_ptr<Mutex> m, std::vector<std::pair<int, TimePoint>>& out,
                   int id) -> Task<void> {
      for (int i = 0; i < 3; ++i) {
        co_await s.delay(microseconds(static_cast<double>((id * 7 + i * 13) % 20 + 1)));
        co_await m->lock();
        co_await s.delay(microseconds(5));
        out.emplace_back(id, s.now());
        m->unlock();
      }
    };
    for (int id = 0; id < n_procs; ++id) sched.spawn(proc(sched, mutex, trace, id));
    sched.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(VariousWidths, SchedulerDeterminism, ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace nws::sim
