// nwslint — project-invariant static analysis for the NWP store simulator.
//
// The simulator's value rests on properties the compiler never checks:
// bit-identical replay at any --jobs count, a strict layer DAG, the closed
// obs span/metric namespace, and errno-style Status results that must not
// be dropped.  nwslint enforces them at source level — token/lightweight-
// parse only, no libclang — as named, individually suppressible rules:
//
//   determinism     wall-clock reads (system_clock, time(), clock(), ...),
//                   rand()/srand(), std::random_device, unseeded std
//                   engines, getenv outside the declared NWS_ allowlist,
//                   and pointer-keyed unordered containers in layered
//                   (sim-facing) code, whose iteration order is
//                   address-dependent and can leak into event ordering.
//   layering        every #include "a/..." from src/<b>/ must be an edge
//                   of the layer DAG declared in scripts/nwslint.conf.
//   obs-schema      span/metric name literals must be registered in
//                   scripts/obs_schema.txt with the right category/kind
//                   (tests/ is exempt: it exercises the obs machinery
//                   itself with ad-hoc names).
//   status-discard  a statement that calls a Status- or Result-returning
//                   function and drops the value, including (void)-casts,
//                   which must instead carry an inline suppression.
//
// Suppression syntax, with a mandatory reason (see docs/LINTING.md).  A
// trailing comment covers its own line; a comment alone on a line also
// covers the next line; the allow-file form covers the whole file.  Several
// rules may be listed, comma-separated.  Valid examples:
//
//   code();  // NWSLINT(allow:determinism): measures real wall-clock by design
//   // NWSLINT(allow:status-discard): best-effort cleanup, failure is benign
//
// A malformed suppression (unknown rule, missing reason) is itself a
// finding under the reserved rule name "suppression", which cannot be
// suppressed.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/schema.h"

namespace nws::lint {

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;
  std::string rule;  // "determinism" | "layering" | "obs-schema" | "status-discard" | "suppression"
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Parsed scripts/nwslint.conf plus the shared obs schema registry.
struct Config {
  std::map<std::string, std::set<std::string>> layers;  // layer -> allowed include layers
  std::vector<std::string> env_prefixes;                // getenv literal allowlist
  obs::SchemaRegistry schema;
};

/// Parses conf text (layer/envvar directives) and schema text into a Config;
/// throws std::runtime_error on malformed input or a cyclic layer DAG.
Config parse_config(const std::string& conf_text, const std::string& schema_text);

/// Loads both files via parse_config; throws if either is unreadable.
Config load_config(const std::string& conf_path, const std::string& schema_path);

/// Names of functions declared to return Status or Result<T>, collected in a
/// first pass over the whole tree so discarded calls are caught across
/// translation units.  Name-based analysis cannot disambiguate overloads
/// living on different types, so a name that is ALSO declared with a void
/// return anywhere (e.g. sim::Scheduler::spawn vs ioserver's Status spawn)
/// is treated as ambiguous and skipped — the [[nodiscard]] attribute on
/// Status/Result keeps the compiler covering those call sites.
struct StatusFns {
  std::set<std::string> names;
  std::set<std::string> void_names;  // names seen with a void return

  [[nodiscard]] bool must_check(const std::string& name) const {
    return names.count(name) != 0 && void_names.count(name) == 0;
  }
};

/// Scans one file's content for `Status name(` / `Result<...> name(`
/// declaration patterns and records the names.
void collect_status_fns(const std::string& content, StatusFns& fns);

/// Lints one file.  `rel_path` is repo-relative with forward slashes; it
/// determines the file's layer (src/<layer>/...) and rule scoping (tests/
/// exempt from obs-schema, layered code only for the pointer-key check).
std::vector<Finding> lint_file(const std::string& rel_path, const std::string& content,
                               const Config& config, const StatusFns& fns);

/// Walks `roots` (repo-relative directories or files) under `repo_root`,
/// runs the status-fn collection pass then lints every .h/.cc/.cpp file.
/// Findings are sorted by file then line.
std::vector<Finding> lint_tree(const std::string& repo_root, const std::vector<std::string>& roots,
                               const Config& config);

}  // namespace nws::lint
