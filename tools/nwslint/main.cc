// nwslint CLI — see lint.h for the rule families and docs/LINTING.md for
// the full contract.
//
//   nwslint [--conf=scripts/nwslint.conf] [--schema=scripts/obs_schema.txt]
//           [--repo=DIR] [ROOT...]
//
// ROOTs are repo-relative directories (or single files) to lint; the
// default set is src bench tests examples tools.  Exit 0 when clean, 1 with
// one "file:line: [rule] message" diagnostic per finding otherwise, 2 on
// usage or configuration errors.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::string conf = "scripts/nwslint.conf";
  std::string schema = "scripts/obs_schema.txt";
  std::string repo = ".";
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--conf=", 0) == 0) {
      conf = arg.substr(7);
    } else if (arg.rfind("--schema=", 0) == 0) {
      schema = arg.substr(9);
    } else if (arg.rfind("--repo=", 0) == 0) {
      repo = arg.substr(7);
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      std::cerr << "usage: nwslint [--conf=FILE] [--schema=FILE] [--repo=DIR] [ROOT...]\n";
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tests", "examples", "tools"};

  try {
    const nws::lint::Config config =
        nws::lint::load_config(repo + "/" + conf, repo + "/" + schema);
    const std::vector<nws::lint::Finding> findings = nws::lint::lint_tree(repo, roots, config);
    for (const nws::lint::Finding& finding : findings) {
      std::cerr << finding.to_string() << "\n";
    }
    if (!findings.empty()) {
      std::cerr << "nwslint: " << findings.size() << " finding(s)\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "nwslint: " << e.what() << "\n";
    return 2;
  }
  std::cout << "nwslint ok\n";
  return 0;
}
