#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace nws::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: identifiers, string literals, numbers and punctuation with line
// numbers, plus the comment stream (for NWSLINT suppression directives).
// Character and string literals are fully consumed so their contents can
// never be mistaken for code; raw strings are handled.

struct Tok {
  enum class Kind { ident, string, number, punct };
  Kind kind;
  std::string text;
  int line = 0;

  [[nodiscard]] bool is(const char* t) const { return text == t; }
  [[nodiscard]] bool is_ident() const { return kind == Kind::ident; }
  [[nodiscard]] bool is_string() const { return kind == Kind::string; }
};

struct Comment {
  std::string text;
  int line = 0;      // line the comment starts on
  int end_line = 0;  // line it ends on (block comments may span lines)
  bool own_line = false;  // no code precedes it on its starting line
};

struct Lexed {
  std::vector<Tok> toks;
  std::vector<Comment> comments;
};

Lexed lex(const std::string& src) {
  Lexed out;
  int line = 1;
  int last_tok_line = 0;
  std::size_t i = 0;
  const std::size_t n = src.size();
  const auto push = [&](Tok::Kind kind, std::string text) {
    out.toks.push_back({kind, std::move(text), line});
    last_tok_line = line;
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back({src.substr(i + 2, j - i - 2), line, line, last_tok_line != line});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start = line;
      const bool own = last_tok_line != line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back({src.substr(i + 2, j - i - 2), start, line, own});
      i = j + 1 < n ? j + 2 : n;
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {  // raw string R"delim(...)delim"
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = end == std::string::npos ? n : end;
      std::string body = src.substr(j + 1, stop - j - 1);
      for (const char ch : body) {
        if (ch == '\n') ++line;
      }
      push(Tok::Kind::string, std::move(body));
      i = stop == n ? n : stop + closer.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string body;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          body += src[j];
          body += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated literal; keep line counts sane
        body += src[j++];
      }
      if (quote == '"') push(Tok::Kind::string, std::move(body));
      i = j < n ? j + 1 : n;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 || src[j] == '_')) ++j;
      push(Tok::Kind::ident, src.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 || src[j] == '.' ||
                       src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P')))) {
        ++j;
      }
      push(Tok::Kind::number, src.substr(i, j - i));
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(Tok::Kind::punct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(Tok::Kind::punct, "->");
      i += 2;
      continue;
    }
    push(Tok::Kind::punct, std::string(1, c));
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions.

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {"determinism", "layering", "obs-schema",
                                             "status-discard"};
  return rules;
}

struct Suppressions {
  std::map<std::string, std::set<int>> lines;  // rule -> suppressed lines
  std::set<std::string> whole_file;            // rules suppressed file-wide
  std::vector<Finding> errors;                 // malformed directives

  [[nodiscard]] bool covers(const std::string& rule, int line) const {
    if (whole_file.count(rule) != 0) return true;
    const auto it = lines.find(rule);
    return it != lines.end() && it->second.count(line) != 0;
  }
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

Suppressions collect_suppressions(const std::string& rel_path, const std::vector<Comment>& comments) {
  Suppressions sup;
  for (const Comment& comment : comments) {
    const std::size_t at = comment.text.find("NWSLINT(");
    if (at == std::string::npos) continue;
    const auto bad = [&](const std::string& why) {
      sup.errors.push_back({rel_path, comment.line, "suppression", why});
    };
    std::string rest = comment.text.substr(at + 8);  // skip past the directive marker
    bool file_wide = false;
    if (rest.rfind("allow-file:", 0) == 0) {
      file_wide = true;
      rest = rest.substr(11);
    } else if (rest.rfind("allow:", 0) == 0) {
      rest = rest.substr(6);
    } else {
      bad("malformed NWSLINT directive: expected NWSLINT(allow:<rule>) or NWSLINT(allow-file:<rule>)");
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string::npos) {
      bad("malformed NWSLINT directive: missing ')'");
      continue;
    }
    // Comma-separated rule list.
    std::vector<std::string> rules;
    std::stringstream rule_stream(rest.substr(0, close));
    std::string rule;
    bool rules_ok = true;
    while (std::getline(rule_stream, rule, ',')) {
      rule = trim(rule);
      if (known_rules().count(rule) == 0) {
        bad("NWSLINT suppression names unknown rule '" + rule + "'");
        rules_ok = false;
        break;
      }
      rules.push_back(rule);
    }
    if (!rules_ok) continue;
    if (rules.empty()) {
      bad("NWSLINT suppression names no rule");
      continue;
    }
    // Mandatory reason: "): <non-empty text>".
    const std::string after = trim(rest.substr(close + 1));
    if (after.empty() || after[0] != ':' || trim(after.substr(1)).empty()) {
      bad("NWSLINT suppression lacks a reason (write: NWSLINT(allow:<rule>): <reason>)");
      continue;
    }
    for (const std::string& r : rules) {
      if (file_wide) {
        sup.whole_file.insert(r);
        continue;
      }
      for (int l = comment.line; l <= comment.end_line; ++l) sup.lines[r].insert(l);
      // A directive on its own line covers the line below it.
      if (comment.own_line) sup.lines[r].insert(comment.end_line + 1);
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Helpers shared by the rules.

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

const Tok* tok_at(const std::vector<Tok>& toks, std::size_t i) {
  return i < toks.size() ? &toks[i] : nullptr;
}

/// True when toks[i] (an identifier followed by '(') reads as a call of the
/// unqualified or std-qualified free function, rather than a member access,
/// a declaration (`ScopedClock clock(...)`) or a foreign qualification.
bool is_free_call_context(const std::vector<Tok>& toks, std::size_t i) {
  if (i == 0) return true;
  const Tok& prev = toks[i - 1];
  if (prev.is(".") || prev.is("->")) return false;
  if (prev.is_ident()) {
    // `Type name(...)` is a declaration of `name`, not a call — but a
    // keyword before the identifier still reads as a call.
    static const std::set<std::string> keywords = {"return", "co_return", "co_await", "co_yield",
                                                   "throw",  "else",      "do",       "case"};
    return keywords.count(prev.text) != 0;
  }
  if (prev.is("::")) {
    return i >= 2 && toks[i - 2].is("std");  // std::rand yes, sim::time no
  }
  return true;
}

/// Finds the index of the ')' matching an opening delimiter at `open`
/// (tracks (), [] and {} uniformly); returns toks.size() if unbalanced.
std::size_t matching_close(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

/// String literals of each top-level argument of the call whose '(' is at
/// `open`.  An argument built by concatenation (`prefix + ".suffix"`) is
/// marked dynamic: its literals are fragments, not complete names, so the
/// static rule must leave it to the runtime check (obs_lint).
struct ArgLiterals {
  std::vector<std::string> literals;
  bool concatenated = false;
};

std::vector<ArgLiterals> call_arg_literals(const std::vector<Tok>& toks, std::size_t open,
                                           std::size_t close) {
  std::vector<ArgLiterals> args(1);
  int depth = 0;
  for (std::size_t j = open; j < close; ++j) {
    const std::string& t = toks[j].text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
      continue;
    }
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      continue;
    }
    if (depth == 1 && t == ",") {
      args.emplace_back();
      continue;
    }
    if (t == "+") args.back().concatenated = true;
    if (toks[j].is_string()) args.back().literals.push_back(toks[j].text);
  }
  return args;
}

// ---------------------------------------------------------------------------
// Rule: determinism.

const std::set<std::string>& banned_idents() {
  static const std::set<std::string> banned = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "random_device", "gettimeofday", "clock_gettime",
      "timespec_get",  "localtime",    "gmtime",
      "strftime",      "mktime"};
  return banned;
}

const std::set<std::string>& banned_calls() {
  static const std::set<std::string> banned = {"rand", "srand", "time", "clock"};
  return banned;
}

const std::set<std::string>& random_engines() {
  static const std::set<std::string> engines = {
      "mt19937",       "mt19937_64",    "default_random_engine",
      "minstd_rand",   "minstd_rand0",  "ranlux24",
      "ranlux48",      "ranlux24_base", "ranlux48_base",
      "knuth_b"};
  return engines;
}

void check_determinism(const std::string& rel_path, const std::vector<Tok>& toks,
                       bool layered_code, const Config& config, std::vector<Finding>& findings) {
  const auto add = [&](int line, const std::string& message) {
    findings.push_back({rel_path, line, "determinism", message});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& tok = toks[i];
    if (!tok.is_ident()) continue;

    if (banned_idents().count(tok.text) != 0) {
      add(tok.line, tok.text + " reads wall-clock or hardware entropy; simulated runs must be "
                               "bit-reproducible (use the sim clock / nws::Rng)");
      continue;
    }

    const Tok* next = tok_at(toks, i + 1);

    if (random_engines().count(tok.text) != 0 && next != nullptr) {
      // `engine name;` / `engine name{}` / `engine name()` / `engine()`
      // are default-seeded; an explicit seed argument is fine.
      std::size_t open = 0;
      if (next->is_ident() && i + 2 < toks.size()) {
        const Tok& after = toks[i + 2];
        if (after.is(";")) {
          add(tok.line, "unseeded std::" + tok.text + "; seed explicitly or use nws::Rng");
          continue;
        }
        if (after.is("(") || after.is("{")) open = i + 2;
      } else if (next->is("(") || next->is("{")) {
        open = i + 1;
      }
      if (open != 0) {
        const std::size_t close = matching_close(toks, open);
        if (close == open + 1) {
          add(tok.line, "unseeded std::" + tok.text + "; seed explicitly or use nws::Rng");
        }
      }
      continue;
    }

    if (next != nullptr && next->is("(") && banned_calls().count(tok.text) != 0 &&
        is_free_call_context(toks, i)) {
      add(tok.line, tok.text + "() is nondeterministic between runs; use the sim clock / nws::Rng");
      continue;
    }

    if (next != nullptr && next->is("(") && tok.text == "getenv" &&
        is_free_call_context(toks, i)) {
      const Tok* arg = tok_at(toks, i + 2);
      if (arg != nullptr && arg->is_string()) {
        bool allowed = false;
        for (const std::string& prefix : config.env_prefixes) {
          if (starts_with(arg->text, prefix)) allowed = true;
        }
        if (!allowed) {
          add(tok.line, "getenv(\"" + arg->text + "\") is outside the declared allowlist "
                        "(scripts/nwslint.conf envvar prefixes)");
        }
      } else {
        add(tok.line, "getenv with a non-literal name cannot be checked against the allowlist");
      }
      continue;
    }

    if (layered_code && next != nullptr && next->is("<") &&
        (tok.text == "unordered_map" || tok.text == "unordered_set" ||
         tok.text == "unordered_multimap" || tok.text == "unordered_multiset")) {
      // Pointer-keyed: hash order depends on addresses, so iteration order
      // can leak allocation order into simulated event ordering.
      int depth = 0;
      bool in_first_arg = true;
      bool pointer_key = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "<") ++depth;
        if (t == ">") {
          --depth;
          if (depth == 0) break;
        }
        if (depth == 1 && t == ",") in_first_arg = false;
        if (in_first_arg && t == "*") pointer_key = true;
      }
      if (pointer_key) {
        add(tok.line, "pointer-keyed " + tok.text + ": iteration order is address-dependent and "
                      "can leak into event ordering; key by a stable id instead");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: layering.

void check_layering(const std::string& rel_path, const std::string& layer,
                    const std::vector<Tok>& toks, const Config& config,
                    std::vector<Finding>& findings) {
  const bool in_src = starts_with(rel_path, "src/");
  if (in_src && config.layers.count(layer) == 0) {
    findings.push_back({rel_path, 1, "layering",
                        "src/" + layer + "/ is not a declared layer (scripts/nwslint.conf)"});
    return;
  }
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].is("#") || !toks[i + 1].is("include") || !toks[i + 2].is_string()) continue;
    const std::string& path = toks[i + 2].text;
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos) continue;  // local header, no layer component
    const std::string target = path.substr(0, slash);
    if (config.layers.count(target) == 0) continue;  // not a library layer path
    if (!in_src) continue;                           // bench/tests/examples/tools sit above the DAG
    if (target == layer) continue;
    const std::set<std::string>& allowed = config.layers.at(layer);
    if (allowed.count(target) == 0) {
      findings.push_back({rel_path, toks[i + 2].line, "layering",
                          "layer '" + layer + "' may not include \"" + path + "\" (allowed: " +
                              [&] {
                                std::string list;
                                for (const std::string& dep : allowed) {
                                  if (!list.empty()) list += ", ";
                                  list += dep;
                                }
                                return list.empty() ? std::string("none") : list;
                              }() +
                              ")"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: obs-schema.

void check_obs_schema(const std::string& rel_path, const std::vector<Tok>& toks,
                      const Config& config, std::vector<Finding>& findings) {
  const auto add = [&](int line, const std::string& message) {
    findings.push_back({rel_path, line, "obs-schema", message});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& tok = toks[i];
    if (!tok.is_ident()) continue;
    if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->")) && tok.text == "Span") continue;

    if (tok.text == "Span" || tok.text == "begin") {
      // `Span name(...)` / `Span(...)` declarator or call forms, plus the
      // low-level `tracer->begin("name", "cat", ...)` emission; in all of
      // them the span-name literal(s) are the first argument and the
      // category literal the second.  A `begin` with no string literals
      // (every iterator call) falls through the literal check below.
      std::size_t open = 0;
      const Tok* next = tok_at(toks, i + 1);
      if (next != nullptr && next->is("(")) {
        open = i + 1;
      } else if (tok.text == "Span" && next != nullptr && next->is_ident() && i + 2 < toks.size() &&
                 toks[i + 2].is("(")) {
        open = i + 2;
      } else {
        continue;
      }
      const std::size_t close = matching_close(toks, open);
      if (close >= toks.size()) continue;
      const auto args = call_arg_literals(toks, open, close);
      if (args.empty() || args[0].literals.empty() || args[0].concatenated) continue;
      for (const std::string& name : args[0].literals) {
        const std::string* category = config.schema.span_category(name);
        if (category == nullptr) {
          add(tok.line, "span name \"" + name + "\" is not registered in scripts/obs_schema.txt");
          continue;
        }
        if (args.size() > 1 && !args[1].literals.empty() &&
            std::find(args[1].literals.begin(), args[1].literals.end(), *category) ==
                args[1].literals.end()) {
          add(tok.line, "span \"" + name + "\" is registered with category '" + *category +
                            "', not '" + args[1].literals[0] + "'");
        }
      }
      if (args.size() > 1) {
        for (const std::string& cat : args[1].literals) {
          if (!config.schema.has_category(cat)) {
            add(tok.line, "span category '" + cat + "' is not registered in scripts/obs_schema.txt");
          }
        }
      }
      continue;
    }

    if (tok.text == "counter" || tok.text == "gauge" || tok.text == "histogram") {
      const Tok* next = tok_at(toks, i + 1);
      if (next == nullptr || !next->is("(")) continue;
      const std::size_t close = matching_close(toks, i + 1);
      if (close >= toks.size()) continue;
      const auto args = call_arg_literals(toks, i + 1, close);
      if (args.empty() || args[0].literals.empty() || args[0].concatenated) continue;
      for (const std::string& name : args[0].literals) {
        const std::string* kind = config.schema.metric_kind(name);
        if (kind == nullptr) {
          add(tok.line, "metric \"" + name + "\" is not registered in scripts/obs_schema.txt");
        } else if (*kind != tok.text) {
          add(tok.line, "metric \"" + name + "\" is registered as a " + *kind + ", used as a " +
                            tok.text);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: status-discard.

/// Walks an identifier chain `a::b.c->d` starting at `i`; returns the index
/// of the last identifier, or npos when toks[i] is not an identifier.
std::size_t chain_last_ident(const std::vector<Tok>& toks, std::size_t i) {
  if (i >= toks.size() || !toks[i].is_ident()) return toks.size();
  std::size_t last = i;
  std::size_t j = i + 1;
  while (j + 1 < toks.size() &&
         (toks[j].is("::") || toks[j].is(".") || toks[j].is("->")) && toks[j + 1].is_ident()) {
    last = j + 1;
    j += 2;
  }
  return last;
}

bool statement_boundary(const Tok& tok) {
  return tok.is(";") || tok.is("{") || tok.is("}") || tok.is(")") || tok.is(":") ||
         tok.is("else") || tok.is("do");
}

void check_status_discard(const std::string& rel_path, const std::vector<Tok>& toks,
                          const StatusFns& fns, std::vector<Finding>& findings) {
  const auto add = [&](int line, const std::string& message) {
    findings.push_back({rel_path, line, "status-discard", message});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (i > 0 && !statement_boundary(toks[i - 1])) continue;

    // `(void)call(...);` — an explicit discard that must instead be spelled
    // as a suppression with a reason.
    if (toks[i].is("(") && i + 3 < toks.size() && toks[i + 1].is("void") && toks[i + 2].is(")")) {
      const std::size_t last = chain_last_ident(toks, i + 3);
      if (last >= toks.size()) continue;
      const Tok* open = tok_at(toks, last + 1);
      if (open == nullptr || !open->is("(")) continue;
      const std::size_t close = matching_close(toks, last + 1);
      const Tok* after = tok_at(toks, close + 1);
      if (after != nullptr && after->is(";")) {
        if (fns.must_check(toks[last].text)) {
          add(toks[last].line, "(void)-cast discards the Status/Result of " + toks[last].text +
                                   "(); handle it or write NWSLINT(allow:status-discard): <reason>");
        }
        // The ')' of the cast is a statement boundary; skip the callee so the
        // bare-call branch does not report the same discard twice.
        i = last;
      }
      continue;
    }

    const std::size_t last = chain_last_ident(toks, i);
    if (last >= toks.size()) continue;
    const Tok* open = tok_at(toks, last + 1);
    if (open == nullptr || !open->is("(")) continue;
    const std::size_t close = matching_close(toks, last + 1);
    const Tok* after = tok_at(toks, close + 1);
    if (after == nullptr || !after->is(";")) continue;
    if (!fns.must_check(toks[last].text)) continue;
    add(toks[last].line, "discarded Status/Result returned by " + toks[last].text +
                             "(); check it, or suppress with a reason if discard is intended");
  }
}

std::string layer_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return {};
  const std::size_t next = rel_path.find('/', 4);
  if (next == std::string::npos) return {};
  return rel_path.substr(4, next - 4);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

std::string Finding::to_string() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

Config parse_config(const std::string& conf_text, const std::string& schema_text) {
  Config config;
  config.schema = obs::SchemaRegistry::parse(schema_text);
  std::istringstream in(conf_text);
  std::string raw;
  int line_no = 0;
  const auto fail = [&](const std::string& what) -> void {
    throw std::runtime_error("nwslint.conf line " + std::to_string(line_no) + ": " + what);
  };
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream words(raw);
    std::string directive;
    if (!(words >> directive)) continue;
    if (directive == "layer") {
      std::string name;
      if (!(words >> name) || name.empty() || name.back() != ':') {
        fail("layer takes '<name>: <deps...>'");
      }
      name.pop_back();
      if (config.layers.count(name) != 0) fail("duplicate layer " + name);
      std::set<std::string>& deps = config.layers[name];
      std::string dep;
      while (words >> dep) deps.insert(dep);
    } else if (directive == "envvar") {
      std::string prefix;
      if (!(words >> prefix)) fail("envvar takes a prefix");
      config.env_prefixes.push_back(prefix);
    } else {
      fail("unknown directive " + directive);
    }
  }
  // Dependencies must be declared, and the graph must be acyclic: DFS with
  // a colour map, so a config that reintroduces a cycle fails loudly.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  const std::function<void(const std::string&)> visit = [&](const std::string& layer) {
    colour[layer] = 1;
    for (const std::string& dep : config.layers.at(layer)) {
      if (config.layers.count(dep) == 0) {
        throw std::runtime_error("nwslint.conf: layer '" + layer + "' depends on undeclared '" +
                                 dep + "'");
      }
      if (colour[dep] == 1) {
        throw std::runtime_error("nwslint.conf: layer DAG has a cycle through '" + layer +
                                 "' and '" + dep + "'");
      }
      if (colour[dep] == 0) visit(dep);
    }
    colour[layer] = 2;
  };
  for (const auto& entry : config.layers) {
    if (colour[entry.first] == 0) visit(entry.first);
  }
  return config;
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Config load_config(const std::string& conf_path, const std::string& schema_path) {
  return parse_config(read_file(conf_path), read_file(schema_path));
}

void collect_status_fns(const std::string& content, StatusFns& fns) {
  const Lexed lexed = lex(content);
  const std::vector<Tok>& toks = lexed.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident()) continue;
    if (i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"))) continue;
    if (toks[i].text == "void") {
      const Tok* name = tok_at(toks, i + 1);
      const Tok* open = tok_at(toks, i + 2);
      if (name != nullptr && name->is_ident() && open != nullptr && open->is("(")) {
        fns.void_names.insert(name->text);
      }
      continue;
    }
    if (toks[i].text == "Status") {
      const Tok* name = tok_at(toks, i + 1);
      const Tok* open = tok_at(toks, i + 2);
      if (name != nullptr && name->is_ident() && name->text != "operator" && open != nullptr &&
          open->is("(")) {
        fns.names.insert(name->text);
      }
      continue;
    }
    if (toks[i].text == "Result") {
      const Tok* angle = tok_at(toks, i + 1);
      if (angle == nullptr || !angle->is("<")) continue;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].is("<")) ++depth;
        if (toks[j].is(">")) {
          --depth;
          if (depth == 0) break;
        }
      }
      const Tok* name = tok_at(toks, j + 1);
      const Tok* open = tok_at(toks, j + 2);
      if (name != nullptr && name->is_ident() && name->text != "operator" && open != nullptr &&
          open->is("(")) {
        fns.names.insert(name->text);
      }
    }
  }
}

std::vector<Finding> lint_file(const std::string& rel_path, const std::string& content,
                               const Config& config, const StatusFns& fns) {
  const Lexed lexed = lex(content);
  const Suppressions sup = collect_suppressions(rel_path, lexed.comments);
  const std::string layer = layer_of(rel_path);
  const bool layered_code = !layer.empty() && config.layers.count(layer) != 0;
  const bool in_tests = starts_with(rel_path, "tests/");

  std::vector<Finding> raw;
  check_determinism(rel_path, lexed.toks, layered_code, config, raw);
  check_layering(rel_path, layer, lexed.toks, config, raw);
  if (!in_tests) check_obs_schema(rel_path, lexed.toks, config, raw);
  check_status_discard(rel_path, lexed.toks, fns, raw);

  std::vector<Finding> findings = sup.errors;  // malformed suppressions are unsuppressible
  for (Finding& finding : raw) {
    if (!sup.covers(finding.rule, finding.line)) findings.push_back(std::move(finding));
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) < std::tie(b.file, b.line, b.rule, b.message);
  });
  return findings;
}

std::vector<Finding> lint_tree(const std::string& repo_root, const std::vector<std::string>& roots,
                               const Config& config) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path base = fs::path(repo_root) / root;
    if (fs::is_regular_file(base)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(base)) {
      throw std::runtime_error("lint root " + base.string() + " is not a file or directory");
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".hpp") continue;
      files.push_back(fs::relative(entry.path(), repo_root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());  // directory iteration order is unspecified

  StatusFns fns;
  std::map<std::string, std::string> contents;
  for (const std::string& file : files) {
    contents[file] = read_file((fs::path(repo_root) / file).string());
    collect_status_fns(contents[file], fns);
  }
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> file_findings = lint_file(file, contents[file], config, fns);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  return findings;
}

}  // namespace nws::lint
