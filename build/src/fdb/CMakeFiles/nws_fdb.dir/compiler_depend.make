# Empty compiler generated dependencies file for nws_fdb.
# This may be replaced when dependencies are built.
