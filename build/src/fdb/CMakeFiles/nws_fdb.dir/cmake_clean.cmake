file(REMOVE_RECURSE
  "CMakeFiles/nws_fdb.dir/catalogue.cc.o"
  "CMakeFiles/nws_fdb.dir/catalogue.cc.o.d"
  "CMakeFiles/nws_fdb.dir/field_io.cc.o"
  "CMakeFiles/nws_fdb.dir/field_io.cc.o.d"
  "CMakeFiles/nws_fdb.dir/field_key.cc.o"
  "CMakeFiles/nws_fdb.dir/field_key.cc.o.d"
  "libnws_fdb.a"
  "libnws_fdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_fdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
