file(REMOVE_RECURSE
  "libnws_fdb.a"
)
