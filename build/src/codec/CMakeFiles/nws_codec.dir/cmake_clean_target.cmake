file(REMOVE_RECURSE
  "libnws_codec.a"
)
