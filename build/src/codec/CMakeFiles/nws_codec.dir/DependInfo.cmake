
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/field_generator.cc" "src/codec/CMakeFiles/nws_codec.dir/field_generator.cc.o" "gcc" "src/codec/CMakeFiles/nws_codec.dir/field_generator.cc.o.d"
  "/root/repo/src/codec/grib.cc" "src/codec/CMakeFiles/nws_codec.dir/grib.cc.o" "gcc" "src/codec/CMakeFiles/nws_codec.dir/grib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
