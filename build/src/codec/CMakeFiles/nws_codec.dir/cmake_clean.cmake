file(REMOVE_RECURSE
  "CMakeFiles/nws_codec.dir/field_generator.cc.o"
  "CMakeFiles/nws_codec.dir/field_generator.cc.o.d"
  "CMakeFiles/nws_codec.dir/grib.cc.o"
  "CMakeFiles/nws_codec.dir/grib.cc.o.d"
  "libnws_codec.a"
  "libnws_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
