# Empty dependencies file for nws_codec.
# This may be replaced when dependencies are built.
