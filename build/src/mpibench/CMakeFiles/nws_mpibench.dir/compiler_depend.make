# Empty compiler generated dependencies file for nws_mpibench.
# This may be replaced when dependencies are built.
