file(REMOVE_RECURSE
  "libnws_mpibench.a"
)
