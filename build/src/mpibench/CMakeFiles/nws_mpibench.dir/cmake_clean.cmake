file(REMOVE_RECURSE
  "CMakeFiles/nws_mpibench.dir/mpibench.cc.o"
  "CMakeFiles/nws_mpibench.dir/mpibench.cc.o.d"
  "libnws_mpibench.a"
  "libnws_mpibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_mpibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
