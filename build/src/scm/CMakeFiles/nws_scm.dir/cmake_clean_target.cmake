file(REMOVE_RECURSE
  "libnws_scm.a"
)
