# Empty compiler generated dependencies file for nws_scm.
# This may be replaced when dependencies are built.
