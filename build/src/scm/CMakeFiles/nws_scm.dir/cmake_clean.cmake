file(REMOVE_RECURSE
  "CMakeFiles/nws_scm.dir/scm.cc.o"
  "CMakeFiles/nws_scm.dir/scm.cc.o.d"
  "libnws_scm.a"
  "libnws_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
