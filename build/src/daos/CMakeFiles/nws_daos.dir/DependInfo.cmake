
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/daos/client.cc" "src/daos/CMakeFiles/nws_daos.dir/client.cc.o" "gcc" "src/daos/CMakeFiles/nws_daos.dir/client.cc.o.d"
  "/root/repo/src/daos/cluster.cc" "src/daos/CMakeFiles/nws_daos.dir/cluster.cc.o" "gcc" "src/daos/CMakeFiles/nws_daos.dir/cluster.cc.o.d"
  "/root/repo/src/daos/event_queue.cc" "src/daos/CMakeFiles/nws_daos.dir/event_queue.cc.o" "gcc" "src/daos/CMakeFiles/nws_daos.dir/event_queue.cc.o.d"
  "/root/repo/src/daos/object_id.cc" "src/daos/CMakeFiles/nws_daos.dir/object_id.cc.o" "gcc" "src/daos/CMakeFiles/nws_daos.dir/object_id.cc.o.d"
  "/root/repo/src/daos/objects.cc" "src/daos/CMakeFiles/nws_daos.dir/objects.cc.o" "gcc" "src/daos/CMakeFiles/nws_daos.dir/objects.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nws_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nws_net.dir/DependInfo.cmake"
  "/root/repo/build/src/scm/CMakeFiles/nws_scm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
