file(REMOVE_RECURSE
  "libnws_daos.a"
)
