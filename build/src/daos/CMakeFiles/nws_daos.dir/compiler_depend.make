# Empty compiler generated dependencies file for nws_daos.
# This may be replaced when dependencies are built.
