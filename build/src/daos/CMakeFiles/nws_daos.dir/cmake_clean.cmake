file(REMOVE_RECURSE
  "CMakeFiles/nws_daos.dir/client.cc.o"
  "CMakeFiles/nws_daos.dir/client.cc.o.d"
  "CMakeFiles/nws_daos.dir/cluster.cc.o"
  "CMakeFiles/nws_daos.dir/cluster.cc.o.d"
  "CMakeFiles/nws_daos.dir/event_queue.cc.o"
  "CMakeFiles/nws_daos.dir/event_queue.cc.o.d"
  "CMakeFiles/nws_daos.dir/object_id.cc.o"
  "CMakeFiles/nws_daos.dir/object_id.cc.o.d"
  "CMakeFiles/nws_daos.dir/objects.cc.o"
  "CMakeFiles/nws_daos.dir/objects.cc.o.d"
  "libnws_daos.a"
  "libnws_daos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_daos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
