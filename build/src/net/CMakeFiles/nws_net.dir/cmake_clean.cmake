file(REMOVE_RECURSE
  "CMakeFiles/nws_net.dir/flow.cc.o"
  "CMakeFiles/nws_net.dir/flow.cc.o.d"
  "CMakeFiles/nws_net.dir/link.cc.o"
  "CMakeFiles/nws_net.dir/link.cc.o.d"
  "CMakeFiles/nws_net.dir/provider.cc.o"
  "CMakeFiles/nws_net.dir/provider.cc.o.d"
  "CMakeFiles/nws_net.dir/topology.cc.o"
  "CMakeFiles/nws_net.dir/topology.cc.o.d"
  "libnws_net.a"
  "libnws_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
