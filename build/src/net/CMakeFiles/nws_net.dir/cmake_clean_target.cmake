file(REMOVE_RECURSE
  "libnws_net.a"
)
