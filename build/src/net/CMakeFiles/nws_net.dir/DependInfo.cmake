
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow.cc" "src/net/CMakeFiles/nws_net.dir/flow.cc.o" "gcc" "src/net/CMakeFiles/nws_net.dir/flow.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/nws_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/nws_net.dir/link.cc.o.d"
  "/root/repo/src/net/provider.cc" "src/net/CMakeFiles/nws_net.dir/provider.cc.o" "gcc" "src/net/CMakeFiles/nws_net.dir/provider.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/nws_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/nws_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nws_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nws_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
