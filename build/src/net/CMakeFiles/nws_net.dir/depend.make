# Empty dependencies file for nws_net.
# This may be replaced when dependencies are built.
