file(REMOVE_RECURSE
  "libnws_ioserver.a"
)
