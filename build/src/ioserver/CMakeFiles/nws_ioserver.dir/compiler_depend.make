# Empty compiler generated dependencies file for nws_ioserver.
# This may be replaced when dependencies are built.
