file(REMOVE_RECURSE
  "CMakeFiles/nws_ioserver.dir/ioserver.cc.o"
  "CMakeFiles/nws_ioserver.dir/ioserver.cc.o.d"
  "libnws_ioserver.a"
  "libnws_ioserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_ioserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
