# Empty dependencies file for nws_harness.
# This may be replaced when dependencies are built.
