file(REMOVE_RECURSE
  "libnws_harness.a"
)
