file(REMOVE_RECURSE
  "CMakeFiles/nws_harness.dir/experiment.cc.o"
  "CMakeFiles/nws_harness.dir/experiment.cc.o.d"
  "CMakeFiles/nws_harness.dir/field_bench.cc.o"
  "CMakeFiles/nws_harness.dir/field_bench.cc.o.d"
  "libnws_harness.a"
  "libnws_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
