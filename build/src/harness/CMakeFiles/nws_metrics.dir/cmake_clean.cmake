file(REMOVE_RECURSE
  "CMakeFiles/nws_metrics.dir/io_log.cc.o"
  "CMakeFiles/nws_metrics.dir/io_log.cc.o.d"
  "libnws_metrics.a"
  "libnws_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
