# Empty dependencies file for nws_metrics.
# This may be replaced when dependencies are built.
