file(REMOVE_RECURSE
  "libnws_metrics.a"
)
