# Empty dependencies file for nws_common.
# This may be replaced when dependencies are built.
