file(REMOVE_RECURSE
  "CMakeFiles/nws_common.dir/cli.cc.o"
  "CMakeFiles/nws_common.dir/cli.cc.o.d"
  "CMakeFiles/nws_common.dir/log.cc.o"
  "CMakeFiles/nws_common.dir/log.cc.o.d"
  "CMakeFiles/nws_common.dir/md5.cc.o"
  "CMakeFiles/nws_common.dir/md5.cc.o.d"
  "CMakeFiles/nws_common.dir/stats.cc.o"
  "CMakeFiles/nws_common.dir/stats.cc.o.d"
  "CMakeFiles/nws_common.dir/status.cc.o"
  "CMakeFiles/nws_common.dir/status.cc.o.d"
  "CMakeFiles/nws_common.dir/table.cc.o"
  "CMakeFiles/nws_common.dir/table.cc.o.d"
  "CMakeFiles/nws_common.dir/units.cc.o"
  "CMakeFiles/nws_common.dir/units.cc.o.d"
  "libnws_common.a"
  "libnws_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
