file(REMOVE_RECURSE
  "libnws_common.a"
)
