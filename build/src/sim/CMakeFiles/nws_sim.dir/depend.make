# Empty dependencies file for nws_sim.
# This may be replaced when dependencies are built.
