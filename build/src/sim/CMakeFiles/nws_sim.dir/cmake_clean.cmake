file(REMOVE_RECURSE
  "CMakeFiles/nws_sim.dir/scheduler.cc.o"
  "CMakeFiles/nws_sim.dir/scheduler.cc.o.d"
  "libnws_sim.a"
  "libnws_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
