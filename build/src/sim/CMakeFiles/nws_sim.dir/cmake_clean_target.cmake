file(REMOVE_RECURSE
  "libnws_sim.a"
)
