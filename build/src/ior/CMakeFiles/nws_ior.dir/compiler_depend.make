# Empty compiler generated dependencies file for nws_ior.
# This may be replaced when dependencies are built.
