file(REMOVE_RECURSE
  "CMakeFiles/nws_ior.dir/ior.cc.o"
  "CMakeFiles/nws_ior.dir/ior.cc.o.d"
  "libnws_ior.a"
  "libnws_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
