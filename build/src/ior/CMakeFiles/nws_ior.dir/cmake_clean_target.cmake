file(REMOVE_RECURSE
  "libnws_ior.a"
)
