file(REMOVE_RECURSE
  "CMakeFiles/nws_lustre.dir/lustre.cc.o"
  "CMakeFiles/nws_lustre.dir/lustre.cc.o.d"
  "libnws_lustre.a"
  "libnws_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
