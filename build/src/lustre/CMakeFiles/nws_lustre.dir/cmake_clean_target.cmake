file(REMOVE_RECURSE
  "libnws_lustre.a"
)
