# Empty compiler generated dependencies file for nws_lustre.
# This may be replaced when dependencies are built.
