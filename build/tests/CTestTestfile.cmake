# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/daos_test[1]_include.cmake")
include("/root/repo/build/tests/fdb_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/scm_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/lustre_test[1]_include.cmake")
include("/root/repo/build/tests/ioserver_test[1]_include.cmake")
include("/root/repo/build/tests/catalogue_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
