# Empty dependencies file for daos_test.
# This may be replaced when dependencies are built.
