file(REMOVE_RECURSE
  "CMakeFiles/daos_test.dir/daos_test.cc.o"
  "CMakeFiles/daos_test.dir/daos_test.cc.o.d"
  "daos_test"
  "daos_test.pdb"
  "daos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
