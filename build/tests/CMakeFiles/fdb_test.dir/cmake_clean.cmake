file(REMOVE_RECURSE
  "CMakeFiles/fdb_test.dir/fdb_test.cc.o"
  "CMakeFiles/fdb_test.dir/fdb_test.cc.o.d"
  "fdb_test"
  "fdb_test.pdb"
  "fdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
