# Empty compiler generated dependencies file for fdb_test.
# This may be replaced when dependencies are built.
