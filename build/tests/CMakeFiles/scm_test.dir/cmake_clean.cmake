file(REMOVE_RECURSE
  "CMakeFiles/scm_test.dir/scm_test.cc.o"
  "CMakeFiles/scm_test.dir/scm_test.cc.o.d"
  "scm_test"
  "scm_test.pdb"
  "scm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
