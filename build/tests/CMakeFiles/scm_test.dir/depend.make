# Empty dependencies file for scm_test.
# This may be replaced when dependencies are built.
