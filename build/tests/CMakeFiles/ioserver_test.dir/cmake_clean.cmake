file(REMOVE_RECURSE
  "CMakeFiles/ioserver_test.dir/ioserver_test.cc.o"
  "CMakeFiles/ioserver_test.dir/ioserver_test.cc.o.d"
  "ioserver_test"
  "ioserver_test.pdb"
  "ioserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
