# Empty dependencies file for ioserver_test.
# This may be replaced when dependencies are built.
