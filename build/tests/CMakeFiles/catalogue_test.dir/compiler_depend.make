# Empty compiler generated dependencies file for catalogue_test.
# This may be replaced when dependencies are built.
