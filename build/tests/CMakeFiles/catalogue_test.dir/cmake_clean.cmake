file(REMOVE_RECURSE
  "CMakeFiles/catalogue_test.dir/catalogue_test.cc.o"
  "CMakeFiles/catalogue_test.dir/catalogue_test.cc.o.d"
  "catalogue_test"
  "catalogue_test.pdb"
  "catalogue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalogue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
