file(REMOVE_RECURSE
  "CMakeFiles/lustre_test.dir/lustre_test.cc.o"
  "CMakeFiles/lustre_test.dir/lustre_test.cc.o.d"
  "lustre_test"
  "lustre_test.pdb"
  "lustre_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lustre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
