# Empty dependencies file for lustre_test.
# This may be replaced when dependencies are built.
