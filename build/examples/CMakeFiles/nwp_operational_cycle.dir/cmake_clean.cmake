file(REMOVE_RECURSE
  "CMakeFiles/nwp_operational_cycle.dir/nwp_operational_cycle.cpp.o"
  "CMakeFiles/nwp_operational_cycle.dir/nwp_operational_cycle.cpp.o.d"
  "nwp_operational_cycle"
  "nwp_operational_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwp_operational_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
