# Empty compiler generated dependencies file for nwp_operational_cycle.
# This may be replaced when dependencies are built.
