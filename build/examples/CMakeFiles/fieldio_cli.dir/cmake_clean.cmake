file(REMOVE_RECURSE
  "CMakeFiles/fieldio_cli.dir/fieldio_cli.cpp.o"
  "CMakeFiles/fieldio_cli.dir/fieldio_cli.cpp.o.d"
  "fieldio_cli"
  "fieldio_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldio_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
