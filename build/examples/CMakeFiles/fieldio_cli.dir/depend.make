# Empty dependencies file for fieldio_cli.
# This may be replaced when dependencies are built.
