
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/end_to_end_forecast.cpp" "examples/CMakeFiles/end_to_end_forecast.dir/end_to_end_forecast.cpp.o" "gcc" "examples/CMakeFiles/end_to_end_forecast.dir/end_to_end_forecast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nws_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ioserver/CMakeFiles/nws_ioserver.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/nws_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/nws_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/nws_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/nws_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/daos/CMakeFiles/nws_daos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nws_net.dir/DependInfo.cmake"
  "/root/repo/build/src/scm/CMakeFiles/nws_scm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
