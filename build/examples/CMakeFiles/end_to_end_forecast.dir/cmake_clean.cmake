file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_forecast.dir/end_to_end_forecast.cpp.o"
  "CMakeFiles/end_to_end_forecast.dir/end_to_end_forecast.cpp.o.d"
  "end_to_end_forecast"
  "end_to_end_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
