# Empty compiler generated dependencies file for table1_ior_single_server.
# This may be replaced when dependencies are built.
