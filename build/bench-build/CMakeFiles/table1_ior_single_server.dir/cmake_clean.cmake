file(REMOVE_RECURSE
  "../bench/table1_ior_single_server"
  "../bench/table1_ior_single_server.pdb"
  "CMakeFiles/table1_ior_single_server.dir/table1_ior_single_server.cc.o"
  "CMakeFiles/table1_ior_single_server.dir/table1_ior_single_server.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ior_single_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
