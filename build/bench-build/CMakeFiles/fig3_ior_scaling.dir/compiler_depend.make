# Empty compiler generated dependencies file for fig3_ior_scaling.
# This may be replaced when dependencies are built.
