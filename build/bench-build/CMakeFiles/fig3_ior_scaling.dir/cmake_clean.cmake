file(REMOVE_RECURSE
  "../bench/fig3_ior_scaling"
  "../bench/fig3_ior_scaling.pdb"
  "CMakeFiles/fig3_ior_scaling.dir/fig3_ior_scaling.cc.o"
  "CMakeFiles/fig3_ior_scaling.dir/fig3_ior_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ior_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
