# Empty dependencies file for fig4_fieldio_high_contention.
# This may be replaced when dependencies are built.
