file(REMOVE_RECURSE
  "../bench/fig4_fieldio_high_contention"
  "../bench/fig4_fieldio_high_contention.pdb"
  "CMakeFiles/fig4_fieldio_high_contention.dir/fig4_fieldio_high_contention.cc.o"
  "CMakeFiles/fig4_fieldio_high_contention.dir/fig4_fieldio_high_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fieldio_high_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
