file(REMOVE_RECURSE
  "../bench/baseline_lustre"
  "../bench/baseline_lustre.pdb"
  "CMakeFiles/baseline_lustre.dir/baseline_lustre.cc.o"
  "CMakeFiles/baseline_lustre.dir/baseline_lustre.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
