# Empty dependencies file for baseline_lustre.
# This may be replaced when dependencies are built.
