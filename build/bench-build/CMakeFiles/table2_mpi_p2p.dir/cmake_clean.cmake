file(REMOVE_RECURSE
  "../bench/table2_mpi_p2p"
  "../bench/table2_mpi_p2p.pdb"
  "CMakeFiles/table2_mpi_p2p.dir/table2_mpi_p2p.cc.o"
  "CMakeFiles/table2_mpi_p2p.dir/table2_mpi_p2p.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mpi_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
