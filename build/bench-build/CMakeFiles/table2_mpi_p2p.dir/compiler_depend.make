# Empty compiler generated dependencies file for table2_mpi_p2p.
# This may be replaced when dependencies are built.
