file(REMOVE_RECURSE
  "../bench/fig7_tcp_vs_psm2"
  "../bench/fig7_tcp_vs_psm2.pdb"
  "CMakeFiles/fig7_tcp_vs_psm2.dir/fig7_tcp_vs_psm2.cc.o"
  "CMakeFiles/fig7_tcp_vs_psm2.dir/fig7_tcp_vs_psm2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tcp_vs_psm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
