# Empty compiler generated dependencies file for fig7_tcp_vs_psm2.
# This may be replaced when dependencies are built.
