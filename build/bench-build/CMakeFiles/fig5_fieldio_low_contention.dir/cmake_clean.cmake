file(REMOVE_RECURSE
  "../bench/fig5_fieldio_low_contention"
  "../bench/fig5_fieldio_low_contention.pdb"
  "CMakeFiles/fig5_fieldio_low_contention.dir/fig5_fieldio_low_contention.cc.o"
  "CMakeFiles/fig5_fieldio_low_contention.dir/fig5_fieldio_low_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fieldio_low_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
