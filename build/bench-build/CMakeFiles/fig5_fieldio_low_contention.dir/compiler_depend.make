# Empty compiler generated dependencies file for fig5_fieldio_low_contention.
# This may be replaced when dependencies are built.
