
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_fieldio_low_contention.cc" "bench-build/CMakeFiles/fig5_fieldio_low_contention.dir/fig5_fieldio_low_contention.cc.o" "gcc" "bench-build/CMakeFiles/fig5_fieldio_low_contention.dir/fig5_fieldio_low_contention.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nws_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/mpibench/CMakeFiles/nws_mpibench.dir/DependInfo.cmake"
  "/root/repo/build/src/fdb/CMakeFiles/nws_fdb.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/nws_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/nws_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/daos/CMakeFiles/nws_daos.dir/DependInfo.cmake"
  "/root/repo/build/src/scm/CMakeFiles/nws_scm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nws_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nws_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
