file(REMOVE_RECURSE
  "../bench/ablation_transfer_scheme"
  "../bench/ablation_transfer_scheme.pdb"
  "CMakeFiles/ablation_transfer_scheme.dir/ablation_transfer_scheme.cc.o"
  "CMakeFiles/ablation_transfer_scheme.dir/ablation_transfer_scheme.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transfer_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
