# Empty dependencies file for ablation_transfer_scheme.
# This may be replaced when dependencies are built.
