# Empty compiler generated dependencies file for projection_future_volumes.
# This may be replaced when dependencies are built.
