file(REMOVE_RECURSE
  "../bench/projection_future_volumes"
  "../bench/projection_future_volumes.pdb"
  "CMakeFiles/projection_future_volumes.dir/projection_future_volumes.cc.o"
  "CMakeFiles/projection_future_volumes.dir/projection_future_volumes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_future_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
