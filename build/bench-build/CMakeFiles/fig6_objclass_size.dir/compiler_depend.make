# Empty compiler generated dependencies file for fig6_objclass_size.
# This may be replaced when dependencies are built.
