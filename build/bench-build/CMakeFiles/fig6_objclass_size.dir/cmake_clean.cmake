file(REMOVE_RECURSE
  "../bench/fig6_objclass_size"
  "../bench/fig6_objclass_size.pdb"
  "CMakeFiles/fig6_objclass_size.dir/fig6_objclass_size.cc.o"
  "CMakeFiles/fig6_objclass_size.dir/fig6_objclass_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_objclass_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
