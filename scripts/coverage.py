#!/usr/bin/env python3
"""Aggregate gcov line coverage and enforce the per-directory baseline.

Usage: scripts/coverage.py <build-dir> [--baseline scripts/coverage_baseline.txt]

Walks <build-dir> for .gcda counter files (produced by a test run of an
NWS_COVERAGE=ON build), asks gcov for machine-readable JSON per translation
unit (`gcov --json-format --stdout`; gcovr is deliberately not a dependency),
sums execution counts per source line across all translation units, and
reports line coverage for each directory listed in the baseline file.

The baseline file has one `<directory> <min-percent>` pair per line
(comments with '#').  Coverage below the baseline fails the script — the
floor only ratchets up: when a PR raises coverage, raise the baseline with
it.  Override the gcov binary with GCOV=gcov-12 when the compiler was g++-12.
"""

import json
import os
import subprocess
import sys


def parse_baseline(path):
    baseline = {}
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            directory, minimum = line.split()
            baseline[directory.rstrip("/")] = float(minimum)
    return baseline


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                # Absolute: gcov runs with cwd=build_dir, not the repo root.
                yield os.path.abspath(os.path.join(root, name))


def gcov_json(gcov, gcda_paths, build_dir):
    """Yields one parsed gcov JSON document per translation unit."""
    # Batched invocations: one process per ~64 files keeps this fast without
    # hitting argv limits.  --stdout emits one JSON document per line.
    for start in range(0, len(gcda_paths), 64):
        batch = gcda_paths[start : start + 64]
        proc = subprocess.run(
            [gcov, "--json-format", "--stdout"] + batch,
            cwd=build_dir,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=True,
            text=True,
        )
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line.startswith("{"):
                yield json.loads(line)


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    build_dir = sys.argv[1]
    baseline_path = "scripts/coverage_baseline.txt"
    if len(sys.argv) >= 4 and sys.argv[2] == "--baseline":
        baseline_path = sys.argv[3]
    baseline = parse_baseline(baseline_path)
    gcov = os.environ.get("GCOV", "gcov")

    gcda = sorted(find_gcda(build_dir))
    if not gcda:
        print(f"coverage: no .gcda files under {build_dir} — "
              "configure with -DNWS_COVERAGE=ON and run the tests first", file=sys.stderr)
        return 1

    # (relative source path, line) -> summed execution count.
    counts = {}
    repo = os.path.abspath(os.path.dirname(os.path.dirname(__file__)))
    for doc in gcov_json(gcov, gcda, build_dir):
        for entry in doc.get("files", []):
            path = entry["file"]
            if not os.path.isabs(path):
                path = os.path.join(build_dir, path)
            rel = os.path.relpath(os.path.abspath(path), repo)
            if rel.startswith(".."):
                continue  # system or third-party header
            for line in entry.get("lines", []):
                key = (rel, line["line_number"])
                counts[key] = counts.get(key, 0) + int(line["count"])

    failed = False
    print(f"{'directory':<12} {'lines':>7} {'covered':>8} {'coverage':>9} {'baseline':>9}")
    for directory in sorted(baseline):
        prefix = directory.rstrip("/") + "/"
        total = sum(1 for (rel, _line) in counts if rel.startswith(prefix))
        covered = sum(1 for (rel, _line), n in counts.items() if rel.startswith(prefix) and n > 0)
        if total == 0:
            print(f"coverage: no instrumented lines under {directory}", file=sys.stderr)
            failed = True
            continue
        percent = 100.0 * covered / total
        verdict = "ok" if percent >= baseline[directory] else "BELOW BASELINE"
        print(f"{directory:<12} {total:>7} {covered:>8} {percent:>8.1f}% {baseline[directory]:>8.1f}% {verdict}")
        if percent < baseline[directory]:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
