#!/usr/bin/env bash
# Full verification: plain Release build + tests, then an ASan+UBSan build
# + tests, then a TSan build running the parallel run-pool and chaos tests.
# The sanitized pass is what gives the chaos harness teeth — a dangling
# coroutine frame or a buffer overrun under injected faults fails here even
# when the plain build happens to pass — and the TSan pass guards the
# work-stealing sweep engine (src/harness/run_pool) against data races.
# The plain and TSan passes additionally run a set of quick bench binaries
# with --trace/--report and validate the JSON artifacts with obs_lint, so a
# schema regression in the observability layer fails CI, not Perfetto.
#
# A coverage stage (--coverage-only, or part of the full run) rebuilds with
# -DNWS_COVERAGE=ON, reruns the test suite and enforces the per-directory
# line-coverage floor in scripts/coverage_baseline.txt via scripts/coverage.py
# (plain gcov JSON + python3 stdlib; no gcovr dependency).
#
# A lint stage (--lint-only, and the first step of the full run) builds and
# runs tools/nwslint over src/ bench/ tests/ examples/ tools/: determinism
# bans, the layer DAG, the obs schema registry and Status discards
# (docs/LINTING.md).  The plain build also compiles with -DNWS_WERROR=ON so
# new warnings fail the build.
#
# Usage: scripts/check.sh [--lint-only|--plain-only|--sanitize-only|--tsan-only|--coverage-only] [--jobs N]
#
# --jobs / -j (or NWS_JOBS) sets both the build parallelism and the
# experiment-sweep parallelism inside the test binaries; 0 or unset means
# one job per hardware thread.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${NWS_JOBS:-$(nproc 2>/dev/null || echo 4)}"
[[ "$jobs" -ge 1 ]] || jobs=$(nproc 2>/dev/null || echo 4)
run_lint=1
run_plain=1
run_sanitize=1
run_tsan=1
run_coverage=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --lint-only) run_plain=0; run_sanitize=0; run_tsan=0; run_coverage=0 ;;
    --plain-only) run_lint=0; run_sanitize=0; run_tsan=0; run_coverage=0 ;;
    --sanitize-only) run_lint=0; run_plain=0; run_tsan=0; run_coverage=0 ;;
    --tsan-only) run_lint=0; run_plain=0; run_sanitize=0; run_coverage=0 ;;
    --coverage-only) run_lint=0; run_plain=0; run_sanitize=0; run_tsan=0 ;;
    --jobs|-j) shift; jobs="${1:?--jobs needs a value}" ;;
    --jobs=*) jobs="${1#--jobs=}" ;;
    *) echo "usage: $0 [--lint-only|--plain-only|--sanitize-only|--tsan-only|--coverage-only] [--jobs N]" >&2; exit 2 ;;
  esac
  shift
done

# Runs one quick bench out of $1/bench with tracing + reporting on and lints
# the artifacts it wrote.  Kept tiny (--quick, 1 repetition, 4 ops) so the
# stage costs seconds while still covering span export, metrics folding and
# the nws-report-v1 schema end to end.  A second pass does the same through
# micro_components, whose artifact plumbing lives outside BenchRunner (it
# wraps google-benchmark's own driver), so its --trace/--report wiring is
# covered separately.
check_artifacts() {
  local build_dir="$1"
  local scratch
  scratch="$(mktemp -d)"
  echo "==> artifact check ($build_dir, fig6_objclass_size --trace/--report)"
  "$build_dir"/bench/fig6_objclass_size --quick --reps=1 --ops=4 \
    --trace="$scratch/trace.json" --report="$scratch/report.json" >/dev/null
  "$build_dir"/bench/obs_lint --schema=scripts/obs_schema.txt \
    --trace="$scratch/trace.json" --report="$scratch/report.json"
  echo "==> artifact check ($build_dir, micro_components --trace/--report)"
  "$build_dir"/bench/micro_components --benchmark_filter=BM_Md5_1KiB \
    --benchmark_min_time=0.01 \
    --trace="$scratch/micro.trace.json" --report="$scratch/micro.report.json" >/dev/null
  "$build_dir"/bench/obs_lint --schema=scripts/obs_schema.txt \
    --trace="$scratch/micro.trace.json" --report="$scratch/micro.report.json"
  # The snapshot bench exercises the epoch.* span/metric namespace, which
  # obs_lint validates as a closed scheme (kinds, names, cross-checks).
  echo "==> artifact check ($build_dir, fig_snapshot_rw --trace/--report)"
  "$build_dir"/bench/fig_snapshot_rw --quick --reps=1 \
    --trace="$scratch/snap.trace.json" --report="$scratch/snap.report.json" >/dev/null
  "$build_dir"/bench/obs_lint --schema=scripts/obs_schema.txt \
    --trace="$scratch/snap.trace.json" --report="$scratch/snap.report.json"
  # The rebuild bench exercises the rebuild.* span/metric namespace (pool-map
  # exclusion, degraded service, resilvering flows).
  echo "==> artifact check ($build_dir, fig_rebuild_interference --trace/--report)"
  "$build_dir"/bench/fig_rebuild_interference --quick --reps=1 \
    --trace="$scratch/rebuild.trace.json" --report="$scratch/rebuild.report.json" >/dev/null
  "$build_dir"/bench/obs_lint --schema=scripts/obs_schema.txt \
    --trace="$scratch/rebuild.trace.json" --report="$scratch/rebuild.report.json"
  # The interface bench exercises the dfs.* span/metric namespace (file
  # system over KV+Array, POSIX emulation) and asserts the native >= dfs >=
  # posix metadata ordering, so an emulation-overhead regression fails here.
  echo "==> artifact check ($build_dir, fig_interfaces --trace/--report)"
  "$build_dir"/bench/fig_interfaces --quick --reps=1 \
    --trace="$scratch/dfs.trace.json" --report="$scratch/dfs.report.json" >/dev/null
  "$build_dir"/bench/obs_lint --schema=scripts/obs_schema.txt \
    --trace="$scratch/dfs.trace.json" --report="$scratch/dfs.report.json"
  rm -rf "$scratch"
}

if [[ $run_lint -eq 1 ]]; then
  echo "==> nwslint (static analysis: determinism, layering, obs schema, status discipline)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DNWS_WERROR=ON
  cmake --build build -j "$jobs" --target nwslint
  ./build/tools/nwslint/nwslint
fi

if [[ $run_plain -eq 1 ]]; then
  echo "==> plain build (build/, -DNWS_WERROR=ON)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DNWS_WERROR=ON
  cmake --build build -j "$jobs"
  NWS_JOBS="$jobs" ctest --test-dir build --output-on-failure -j "$jobs"
  check_artifacts build
fi

if [[ $run_sanitize -eq 1 ]]; then
  echo "==> sanitized build (build-sanitize/, -fsanitize=address,undefined)"
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNWS_SANITIZE=address,undefined
  cmake --build build-sanitize -j "$jobs"
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 NWS_JOBS="$jobs" \
    ctest --test-dir build-sanitize --output-on-failure -j "$jobs"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "==> TSan build (build-tsan/, -fsanitize=thread): run pool + chaos sweep"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNWS_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target harness_test chaos_test partition_test dfs_test fig6_objclass_size micro_components fig_snapshot_rw fig_rebuild_interference fig_interfaces obs_lint
  # The pool tests pin their own thread counts; the chaos sweep runs a
  # reduced scenario count (TSan is ~10x slower) across all hardware threads
  # to actually exercise cross-thread stealing.  StatsRaceTest hammers the
  # Summary order-statistic cache from 8 const readers — the regression test
  # for the lazily-built sorted_ cache being written under const.
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/harness_test --gtest_filter='RunPoolTest.*:StatsRaceTest.*:ExperimentTest.RepeatAndBestOverPpnIdenticalAtAnyJobCount:ExperimentTest.MetricsSnapshotIdenticalAtAnyJobCount'
  # The partitioned window protocol: worker threads + SPSC mailboxes +
  # std::barrier.  The scheduler and bench suites run multi-worker windowed
  # executions (workers 2..8), which is where a missing release edge on the
  # mailbox ring or a barrier-completion write would surface.  The full
  # determinism suite stays in the plain pass — it is a logic property, and
  # under TSan it would dominate the stage's wall clock.
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/partition_test --gtest_filter='SpscMailboxTest.*:PartitionedSchedulerTest.*:PartitionedBenchTest.*'
  TSAN_OPTIONS=halt_on_error=1 NWS_CHAOS_COUNT=24 NWS_JOBS=0 \
    ./build-tsan/tests/chaos_test
  # The dfs property/chaos sweep drives the POSIX emulation's shared
  # metadata mutex and the per-client coroutine interleavings; a reduced
  # case count keeps the TSan stage within seconds.
  TSAN_OPTIONS=halt_on_error=1 NWS_DFS_COUNT=2 \
    ./build-tsan/tests/dfs_test --gtest_filter='DfsPropertyTest.*:DfsChaosTest.*:PosixFsTest.SharedMetadataLockSerialisesProcesses'
  TSAN_OPTIONS=halt_on_error=1 check_artifacts build-tsan
fi

if [[ $run_coverage -eq 1 ]]; then
  echo "==> coverage build (build-coverage/, -DNWS_COVERAGE=ON): line-coverage floor"
  cmake -B build-coverage -S . -DCMAKE_BUILD_TYPE=Debug -DNWS_COVERAGE=ON
  cmake --build build-coverage -j "$jobs"
  # Stale counters from a previous run would inflate coverage.
  find build-coverage -name '*.gcda' -delete
  NWS_JOBS="$jobs" ctest --test-dir build-coverage --output-on-failure -j "$jobs"
  python3 scripts/coverage.py build-coverage
fi

echo "==> all checks passed"
