#!/usr/bin/env bash
# Full verification: plain Release build + tests, then an ASan+UBSan build
# + tests.  The sanitized pass is what gives the chaos harness teeth — a
# dangling coroutine frame or a buffer overrun under injected faults fails
# here even when the plain build happens to pass.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_plain=1
run_sanitize=1
case "${1:-}" in
  --plain-only) run_sanitize=0 ;;
  --sanitize-only) run_plain=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain-only|--sanitize-only]" >&2; exit 2 ;;
esac

if [[ $run_plain -eq 1 ]]; then
  echo "==> plain build (build/)"
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if [[ $run_sanitize -eq 1 ]]; then
  echo "==> sanitized build (build-sanitize/, -fsanitize=address,undefined)"
  cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNWS_SANITIZE=address,undefined
  cmake --build build-sanitize -j "$jobs"
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-sanitize --output-on-failure -j "$jobs"
fi

echo "==> all checks passed"
